// Package good satisfies the telemetry begin/done bracket contract.
package good

import "context"

type qctl struct{}

func (q *qctl) noteWindow(lo, hi int64) {}

// Engine mirrors the core engine facade.
type Engine struct{}

func (e *Engine) begin(ctx context.Context, op, table string) (*qctl, context.Context, func(*error)) {
	return &qctl{}, ctx, func(*error) {}
}

// ShardedEngine routes through an inner engine.
type ShardedEngine struct {
	global *Engine
}

// Count brackets correctly: begin, then defer done(&err) before any
// branch, against the named error result.
func (e *Engine) Count(ctx context.Context, table string) (n int, err error) {
	qc, ctx, done := e.begin(ctx, "count", table)
	defer done(&err)
	_, _ = qc, ctx
	return 1, nil
}

// Windowed interposes a straight-line statement between begin and the
// defer — allowed while control cannot branch.
func (e *Engine) Windowed(ctx context.Context, table string, lo, hi int64) (err error) {
	qc, ctx, done := e.begin(ctx, "windowed", table)
	qc.noteWindow(lo, hi)
	defer done(&err)
	_ = ctx
	return nil
}

// Routed is the per-shard implementation the sharded facade delegates
// to; it owns the bracket.
func (e *Engine) Routed(ctx context.Context, table string) (n int, err error) {
	qc, ctx, done := e.begin(ctx, "routed", table)
	defer done(&err)
	_, _ = qc, ctx
	return 0, nil
}

// Routed on the sharded facade is a pure delegation; the inner engine
// records the query exactly once.
func (se *ShardedEngine) Routed(ctx context.Context, table string) (int, error) {
	return se.global.Routed(ctx, table)
}

// Scattered brackets through the inner engine before fanning out.
func (se *ShardedEngine) Scattered(ctx context.Context, table string) (err error) {
	qc, ctx, done := se.global.begin(ctx, "scattered", table)
	defer done(&err)
	_, _ = qc, ctx
	return nil
}

// Flush is exported and returns an error but is not a query; the
// directive keeps it out of the contract.
//
//moglint:nobracket
func (e *Engine) Flush(ctx context.Context) error {
	return nil
}

// unexported helpers that never touch the bracket are fine.
func validate(table string) error {
	if table == "" {
		return context.Canceled
	}
	return nil
}

// ServeCount is server-shaped: bracket once up front, then fan the
// work out to a joined worker goroutine. The closure opens no bracket
// of its own — the method's bracket already observes the outcome.
func (e *Engine) ServeCount(ctx context.Context, table string) (err error) {
	qc, ctx, done := e.begin(ctx, "serve_count", table)
	defer done(&err)
	out := make(chan error, 1)
	go func() { out <- nil }()
	_ = qc
	_ = ctx
	return <-out
}
