// Package bad violates the telemetry begin/done bracket contract in
// every way the analyzer must catch.
package bad

import "context"

type qctl struct{}

// Engine mirrors the core engine facade; begin opens the bracket.
type Engine struct{}

func (e *Engine) begin(ctx context.Context, op, table string) (*qctl, context.Context, func(*error)) {
	return &qctl{}, ctx, func(*error) {}
}

func cond() bool { return true }

// NoBracket is an exported Querier method that never records.
func (e *Engine) NoBracket(ctx context.Context, table string) error { // want
	return nil
}

// LateDefer lets control branch between begin and the defer; an early
// return escapes the bracket.
func (e *Engine) LateDefer(ctx context.Context, table string) (err error) {
	qc, ctx, done := e.begin(ctx, "late", table) // want
	if cond() {
		return nil
	}
	defer done(&err)
	_, _ = qc, ctx
	return nil
}

// ConditionalBracket records only one arm; the other path exits
// unobserved.
func (e *Engine) ConditionalBracket(ctx context.Context, table string) (err error) {
	if cond() {
		qc, ctx2, done := e.begin(ctx, "cond", table) // want
		defer done(&err)
		_, _ = qc, ctx2
	}
	return nil
}

// LoopedBracket opens the bracket once per iteration.
func (e *Engine) LoopedBracket(ctx context.Context, tables []string) (err error) {
	for _, t := range tables {
		qc, ctx2, done := e.begin(ctx, "loop", t) // want
		defer done(&err)
		_, _ = qc, ctx2
	}
	return nil
}

// DoubleBracket records the same query twice.
func (e *Engine) DoubleBracket(ctx context.Context, table string) (err error) {
	qc, ctx, done := e.begin(ctx, "one", table)
	defer done(&err)
	qc2, ctx2, done2 := e.begin(ctx, "two", table) // want
	defer done2(&err)
	_, _, _, _ = qc, ctx, qc2, ctx2
	return nil
}

// WrongErr defers done against a local, so the classifier never sees
// the method's real outcome.
func (e *Engine) WrongErr(ctx context.Context, table string) (err error) {
	var localErr error
	qc, ctx, done := e.begin(ctx, "wrong", table) // want
	defer done(&localErr)
	_, _ = qc, ctx
	return localErr
}

// NoNamedErr has no named error result for done to observe.
func (e *Engine) NoNamedErr(ctx context.Context, table string) error { // want
	qc, ctx, done := e.begin(ctx, "anon", table)
	var err error
	defer done(&err)
	_, _ = qc, ctx
	return err
}

// helper opens a bracket outside any Querier method, double-recording
// every query routed through it.
func helper(e *Engine, ctx context.Context) {
	qc, c, done := e.begin(ctx, "helper", "t") // want
	defer done(nil)
	_, _ = qc, c
}

// serveQuery mimics an HTTP handler shim that opens the engine
// bracket itself instead of letting the Querier method record; every
// routed query is double-counted.
func serveQuery(e *Engine, ctx context.Context, table string) {
	qc, c, done := e.begin(ctx, "http_query", table) // want
	defer done(nil)
	_, _ = qc, c
}
