// Shard-fleet coordinators that fan every invalidation across the
// whole fleet; rule 3 of cacheinvalidate must stay silent.
package good

import (
	"mogis/internal/core"
)

// Sharded fans queries across per-shard engines.
type Sharded struct {
	shards []*core.Engine
	global *core.Engine
}

// InvalidateTrajectories fans the clear through every shard via the
// element variable — the coordinator's canonical shape.
func (s *Sharded) InvalidateTrajectories(table string) {
	s.global.InvalidateTrajectories(table)
	for _, sh := range s.shards {
		sh.InvalidateTrajectories(table)
	}
}

// ResetCache walks the fleet by index; the range key covers every
// shard, so the indexed call is a full fan-out.
func (s *Sharded) ResetCache() {
	for i := range s.shards {
		s.shards[i].ResetCache()
	}
}

// Shard reads one shard without touching its caches — routing a query
// to the owning shard is fine; only invalidation must fan out.
func (s *Sharded) Shard(i int) *core.Engine {
	return s.shards[i]
}
