// Shard coordinators that clear their derived partition maps whenever
// they fan invalidation across the fleet; rule 4 of cacheinvalidate
// must stay silent.
package good

import (
	"mogis/internal/core"
)

// Coordinator shards a fleet and caches per-table partition state
// (e.g. per-shard time spans) in a map keyed by table name.
type Coordinator struct {
	shards []*core.Engine
	parts  map[string]int
}

// InvalidateTrajectories fans the clear through every shard and drops
// the table's partition entry via a helper (one-level transitive).
func (c *Coordinator) InvalidateTrajectories(table string) {
	for _, sh := range c.shards {
		sh.InvalidateTrajectories(table)
	}
	c.dropParts(table)
}

// ResetCache resets every shard and reassigns the partition map, so no
// derived state survives the fleet-wide clear.
func (c *Coordinator) ResetCache() {
	for i := range c.shards {
		c.shards[i].ResetCache()
	}
	c.parts = make(map[string]int)
}

// DropTable deletes the partition entry inline alongside the fan-out.
func (c *Coordinator) DropTable(table string) {
	for _, sh := range c.shards {
		sh.InvalidateTrajectories(table)
	}
	delete(c.parts, table)
}

// Parts routes a lookup without invalidating anything — read paths are
// exempt from rule 4.
func (c *Coordinator) Parts(table string) int {
	return c.parts[table]
}

func (c *Coordinator) dropParts(table string) {
	delete(c.parts, table)
}
