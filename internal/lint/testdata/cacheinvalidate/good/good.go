// Package good pairs every table mutation with the matching snapshot
// clear or engine invalidation; cacheinvalidate must stay silent.
package good

import (
	"sync/atomic"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/moft"
)

type Columns struct{}

// Table carries a derived columnar snapshot.
type Table struct {
	tuples []int
	cols   atomic.Pointer[Columns]
}

// Append clears the snapshot directly (rule 1).
func (t *Table) Append(v int) {
	t.tuples = append(t.tuples, v)
	t.cols.Store(nil)
}

// Set routes the clear through a helper method (rule 1, one level).
func (t *Table) Set(i, v int) {
	t.tuples[i] = v
	t.invalidate()
}

func (t *Table) invalidate() { t.cols.Store(nil) }

// Len reads without mutating — no clear required.
func (t *Table) Len() int { return len(t.tuples) }

// refill invalidates the engine after the mutation (rule 2).
func refill(eng *core.Engine, ctx *fo.Context) {
	tb, _ := ctx.Table("bus")
	tb.Add(1, 2, 3, 4)
	tb.AddTuple(moft.Tuple{})
	eng.InvalidateTrajectories("bus")
}

// load mutates before any engine exists — the caches build lazily on
// first query, so nothing can go stale.
func load(ctx *fo.Context) {
	tb, _ := ctx.Table("bus")
	tb.Add(1, 2, 3, 4)
}

// build mutates first and only then creates the engine (rule 2:
// mutations before the engine are fine).
func build(ctx *fo.Context) *core.Engine {
	tb, _ := ctx.Table("bus")
	tb.Add(1, 2, 3, 4)
	return core.New(ctx)
}
