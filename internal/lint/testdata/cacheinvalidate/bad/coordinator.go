// Shard coordinators that fan invalidation across the fleet but keep
// their derived partition maps — rule 4 of the cacheinvalidate
// analyzer must flag each method.
package bad

import (
	"mogis/internal/core"
)

// Coordinator shards a fleet and caches per-table partition state
// (e.g. per-shard time spans) in a map keyed by table name.
type Coordinator struct {
	shards []*core.Engine
	parts  map[string]int
}

// InvalidateTrajectories fans the clear through every shard but keeps
// the stale partition entry for the table (rule 4).
func (c *Coordinator) InvalidateTrajectories(table string) { // want
	for _, sh := range c.shards {
		sh.InvalidateTrajectories(table)
	}
}

// ResetCache resets every shard by index yet leaves the whole
// partition map intact (rule 4).
func (c *Coordinator) ResetCache() { // want
	for i := range c.shards {
		c.shards[i].ResetCache()
	}
}
