// Package bad mutates tables without invalidating derived state —
// both forms the cacheinvalidate analyzer must catch.
package bad

import (
	"sync/atomic"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/moft"
)

type Columns struct{}

// Table carries a derived columnar snapshot.
type Table struct {
	tuples []int
	cols   atomic.Pointer[Columns]
}

// Append mutates the backing slice but leaves the stale snapshot in
// place (rule 1).
func (t *Table) Append(v int) { // want
	t.tuples = append(t.tuples, v)
}

// Set overwrites an element without clearing the snapshot (rule 1).
func (t *Table) Set(i, v int) { // want
	t.tuples[i] = v
}

// refill mutates a fact table while an engine is in scope and never
// invalidates it (rule 2).
func refill(eng *core.Engine, ctx *fo.Context) {
	tb, _ := ctx.Table("bus")
	tb.Add(1, 2, 3, 4) // want
}

// lateMutation invalidates, then mutates again afterwards (rule 2:
// the invalidation must come after the last mutation).
func lateMutation(eng *core.Engine, ctx *fo.Context) {
	tb, _ := ctx.Table("bus")
	tb.AddTuple(moft.Tuple{})
	eng.InvalidateTrajectories("bus")
	tb.AddTuple(moft.Tuple{}) // want
}
