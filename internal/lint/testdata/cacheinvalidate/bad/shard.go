// Shard-fleet coordinators that clear a single shard's caches —
// rule 3 of the cacheinvalidate analyzer must flag each site.
package bad

import (
	"mogis/internal/core"
)

// Sharded fans queries across per-shard engines.
type Sharded struct {
	shards []*core.Engine
}

// InvalidateTrajectories clears only the first shard; its siblings
// keep answering from stale trajectories (rule 3).
func (s *Sharded) InvalidateTrajectories(table string) {
	s.shards[0].InvalidateTrajectories(table) // want
}

// DropShard clears one indexed shard outside any fleet-wide loop
// (rule 3): the index is a parameter, not a range key.
func (s *Sharded) DropShard(i int, table string) {
	s.shards[i].InvalidateTrajectories(table) // want
}

// ResetFirst resets a single shard's caches while the rest of the
// fleet keeps its derived state (rule 3).
func (s *Sharded) ResetFirst() {
	s.shards[0].ResetCache() // want
}

// PartialReset ranges the fleet but indexes with an unrelated
// variable, so only one shard is ever cleared (rule 3).
func (s *Sharded) PartialReset(victim int) {
	for i := range s.shards {
		_ = i
		s.shards[victim].ResetCache() // want
	}
}
