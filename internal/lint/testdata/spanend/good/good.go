// Package good closes every span on every path; spanend must stay
// silent.
package good

import "mogis/internal/obs"

var errFail error

func cond() bool { return true }

// deferred is the canonical pattern: defer right after Start.
func deferred(tr *obs.Tracer) error {
	sp := tr.Start("stage_one")
	defer sp.End()
	if cond() {
		return errFail
	}
	return nil
}

// branchEnd ends the span explicitly on each path.
func branchEnd(tr *obs.Tracer) error {
	sp := tr.Start("stage_two")
	if cond() {
		sp.End()
		return errFail
	}
	sp.SetCount("rows", 2)
	sp.End()
	return nil
}

// perIteration opens and closes a span wholly inside a loop body.
func perIteration(tr *obs.Tracer) {
	for i := 0; i < 3; i++ {
		sp := tr.Start("stage_loop")
		sp.SetCount("i", int64(i))
		sp.End()
	}
}

// finished relies on the tracer's Finish, which ends every open span.
func finished() {
	tr := obs.NewTracer("root_name")
	sp := tr.Start("stage_three")
	sp.SetCount("rows", 3)
	tr.Finish()
}
