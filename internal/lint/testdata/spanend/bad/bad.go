// Package bad violates the span-lifecycle contract in every way the
// spanend analyzer must catch.
package bad

import "mogis/internal/obs"

var errFail error

func cond() bool { return true }

// leakOnError ends the span on the success path only; the error
// return leaves it open.
func leakOnError(tr *obs.Tracer) error {
	sp := tr.Start("stage_one")
	if cond() {
		return errFail // want
	}
	sp.End()
	return nil
}

// discarded drops the span value, so nothing can ever End it.
func discarded(tr *obs.Tracer) {
	tr.Start("stage_two") // want
}

// blanked assigns the span to the blank identifier.
func blanked(tr *obs.Tracer) {
	_ = tr.Start("stage_blank") // want
}

// neverEnded holds the span but falls off the function without End.
func neverEnded(tr *obs.Tracer) {
	sp := tr.Start("stage_three") // want
	sp.SetCount("rows", 1)
}

// branchOnlyEnd ends the span in one arm; the fall-through path after
// the if leaks it.
func branchOnlyEnd(tr *obs.Tracer) error {
	sp := tr.Start("stage_four")
	if cond() {
		sp.End()
		return nil
	}
	return errFail // want
}
