// Package good honors the determinism contract; the analyzer must
// stay silent. The package-doc directive puts every function in
// scope:
//
//moglint:deterministic
package good

import "sort"

// sortedResult restores a canonical order after map iteration.
func sortedResult(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// counted aggregates order-independently — no slice is assembled.
func counted(m map[int]bool) int {
	n := 0
	for k := range m {
		if m[k] {
			n++
		}
	}
	return n
}

// sliceRange iterates a slice, which is already ordered.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// scratchSlice appends to a slice local to the loop body.
func scratchSlice(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
