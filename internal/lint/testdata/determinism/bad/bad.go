// Package bad breaks the determinism contract inside marked scopes.
package bad

import (
	"math/rand"
	"time"
)

//moglint:deterministic
func query(m map[int]string) []string {
	_ = time.Now() // want
	_ = rand.Int() // want
	var out []string
	for _, v := range m {
		out = append(out, v) // want
	}
	return out
}

// unmarked is outside the contract: the same code draws no findings.
func unmarked(m map[int]string) []string {
	_ = time.Now()
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

//moglint:deterministic
func localMap(keys []int) []int {
	seen := make(map[int]bool)
	for _, k := range keys {
		seen[k] = true
	}
	var out []int
	for k := range seen {
		out = append(out, k) // want
	}
	return out
}
