// Package bad registers dynamic, mis-cased and colliding obs names.
package bad

import (
	"fmt"

	"log/slog"

	"mogis/internal/obs"
)

func dynamicName() string { return "mogis_x_total" }

func register(r *obs.Registry, i int) {
	r.Counter(fmt.Sprintf("mogis_dyn_%d_total", i), "help") // want
	r.Counter("mogis_ok_total", "help")
	r.Counter("mogis_ok_total", "registered twice")  // want
	r.Gauge("MixedCase", "help")                     // want
	r.Histogram("mogis-dashed-seconds", "help", nil) // want
}

func spans(tr *obs.Tracer) {
	sp := tr.Start("bad.dotted") // want
	sp.End()
	sp2 := tr.Start(dynamicName()) // want
	sp2.SetCount("UpperKey", 1)    // want
	sp2.End()
}

func logAttrs(l *slog.Logger) {
	l.LogAttrs(nil, slog.LevelInfo, "query",
		slog.String("op", "ok_key"),
		slog.String("durationUs", "camel-cased key"), // want
		slog.Int64(dynamicName(), 1),                 // want
		slog.String("kebab-key", "dashed key"),       // want
	)
}
