// Package good names every obs instrument with a unique snake_case
// constant; metricname must stay silent.
package good

import (
	"log/slog"
	"time"

	"mogis/internal/obs"
)

// stageName shows that a named constant satisfies the contract too.
const stageName = "stage_const"

func register(r *obs.Registry) {
	r.Counter("mogis_things_total", "help")
	r.Counter(`mogis_labeled_total{kind="a"}`, "help")
	r.Counter(`mogis_labeled_total{kind="b"}`, "help")
	r.Gauge("mogis_level", "help")
	r.Histogram("mogis_duration_seconds", "help", nil)
}

// registerTelemetry mirrors the telemetry collector's own counters:
// the snake_case family with the mogis_telemetry_ prefix.
func registerTelemetry(r *obs.Registry) {
	r.Counter("mogis_telemetry_records_total", "help")
	r.Counter("mogis_telemetry_log_records_total", "help")
	r.Counter("mogis_telemetry_traces_sampled_total", "help")
	r.Counter("mogis_telemetry_slow_queries_total", "help")
	r.Counter("mogis_telemetry_traces_evicted_total", "help")
}

// logAttrs mirrors the structured query log: every slog record key an
// untyped snake_case constant. The same key from several emitters is
// fine — log keys are join keys, not registrations.
func logAttrs(l *slog.Logger, d time.Duration) {
	const errKey = "error"
	l.LogAttrs(nil, slog.LevelInfo, "query",
		slog.String("op", "objects_passing_through"),
		slog.String("outcome", "ok"),
		slog.Int64("duration_us", d.Microseconds()),
		slog.Int64("rows_scanned", 0),
		slog.Int64("cache_hits", 0),
		slog.Time("start", time.Time{}),
		slog.String(errKey, ""),
	)
	l.LogAttrs(nil, slog.LevelInfo, "query", slog.String("op", "again"))
}

func spans(tr *obs.Tracer) {
	sp := tr.Start(stageName)
	sp.SetCount("tuples", 1)
	sp.AddCount("rows", 2)
	sp.End()
}

func roots() {
	// The same root name from two entry points is fine: roots name the
	// query, not the site.
	tr := obs.NewTracer("canonical_query")
	tr.Finish()
	tr2 := obs.NewTracer("canonical_query")
	tr2.Finish()
}
