// Package good names every obs instrument with a unique snake_case
// constant; metricname must stay silent.
package good

import "mogis/internal/obs"

// stageName shows that a named constant satisfies the contract too.
const stageName = "stage_const"

func register(r *obs.Registry) {
	r.Counter("mogis_things_total", "help")
	r.Counter(`mogis_labeled_total{kind="a"}`, "help")
	r.Counter(`mogis_labeled_total{kind="b"}`, "help")
	r.Gauge("mogis_level", "help")
	r.Histogram("mogis_duration_seconds", "help", nil)
}

func spans(tr *obs.Tracer) {
	sp := tr.Start(stageName)
	sp.SetCount("tuples", 1)
	sp.AddCount("rows", 2)
	sp.End()
}

func roots() {
	// The same root name from two entry points is fine: roots name the
	// query, not the site.
	tr := obs.NewTracer("canonical_query")
	tr.Finish()
	tr2 := obs.NewTracer("canonical_query")
	tr2.Finish()
}
