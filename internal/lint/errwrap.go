package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AnalyzerErrWrap keeps the typed error taxonomy (qerr codes, budget
// errors) intact across package boundaries. The engine's callers
// branch on errors.Is/errors.As; any code path that matches on error
// text instead silently breaks when a message is reworded. Four
// shapes are findings:
//
//   - err.Error() compared with == or != — match errors.Is instead;
//   - err.Error() passed to a strings.* predicate
//     (Contains/HasPrefix/...) — the message is not an API;
//   - fmt.Errorf with an error-typed operand but no %w verb — the
//     wrapped cause is flattened to text and errors.As can no longer
//     reach it across the package boundary;
//   - a type assertion or type switch directly on an error-typed
//     value — errors.As unwraps chains, a bare assertion does not.
//
// All resolution is type-based: any expression whose static type is
// the error interface counts, not just variables named err. A
// `//moglint:stringerr` directive on the enclosing function's doc
// comment exempts it (e.g. golden-output tests that assert exact
// messages).
var AnalyzerErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "typed errors cross boundaries via %w and errors.Is/As, never string matching",
	Run:  runErrWrap,
}

func runErrWrap(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || hasDirective(fd.Doc, "moglint:stringerr") {
					continue
				}
				out = append(out, p.checkErrWrap(fd)...)
			}
		}
	}
	return out
}

// isErrorTextExpr reports whether e is a call of Error() on an
// error-typed value — the message text of an error.
func (p *Package) isErrorTextExpr(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorType(p.typeOf(sel.X))
}

func (p *Package) checkErrWrap(fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if (v.Op == token.EQL || v.Op == token.NEQ) &&
				(p.isErrorTextExpr(v.X) || p.isErrorTextExpr(v.Y)) {
				out = append(out, p.finding("errwrap", v,
					"%s compares err.Error() text with %s; use errors.Is against the typed sentinel", fd.Name.Name, v.Op))
			}
		case *ast.CallExpr:
			out = append(out, p.checkErrCall(fd, v)...)
		case *ast.TypeAssertExpr:
			if v.Type != nil && isErrorType(p.typeOf(v.X)) {
				out = append(out, p.finding("errwrap", v,
					"%s type-asserts on an error value; use errors.As, which unwraps %%w chains", fd.Name.Name))
			}
		case *ast.TypeSwitchStmt:
			if assertsError(p, v) {
				out = append(out, p.finding("errwrap", v,
					"%s type-switches on an error value; use errors.As, which unwraps %%w chains", fd.Name.Name))
			}
		}
		return true
	})
	return out
}

func (p *Package) checkErrCall(fd *ast.FuncDecl, call *ast.CallExpr) []Finding {
	var out []Finding

	// strings.* predicate fed error text.
	if obj := p.calleeObj(call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "strings" {
		for _, a := range call.Args {
			if p.isErrorTextExpr(a) {
				out = append(out, p.finding("errwrap", call,
					"%s matches err.Error() text with strings.%s; error messages are not an API, use errors.Is/As", fd.Name.Name, obj.Name()))
				break
			}
		}
	}

	// fmt.Errorf flattening an error without %w.
	if p.pkgFunc(call, "fmt", "Errorf") && len(call.Args) > 1 {
		format, ok := p.constString(call.Args[0])
		if ok && !strings.Contains(format, "%w") {
			for _, a := range call.Args[1:] {
				if isErrorType(p.typeOf(a)) || p.isErrorTextExpr(a) {
					out = append(out, p.finding("errwrap", call,
						"fmt.Errorf in %s flattens an error without %%w; errors.As cannot reach the cause across package boundaries", fd.Name.Name))
					break
				}
			}
		}
	}
	return out
}

// assertsError reports whether a type switch's operand is error-typed:
// `switch e := err.(type)` or `switch err.(type)`.
func assertsError(p *Package, ts *ast.TypeSwitchStmt) bool {
	var x ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	return x != nil && isErrorType(p.typeOf(x))
}
