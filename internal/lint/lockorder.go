package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// AnalyzerLockOrder guards the two classic mutex failure modes in the
// sharded engine's hot path:
//
//  1. a sync.Mutex / sync.RWMutex held across a blocking operation — a
//     channel send or receive, a select without a default clause, or a
//     sync.WaitGroup.Wait — which turns shard fan-in stalls into
//     whole-engine stalls (and deadlocks outright when the blocked
//     goroutine is the one that would unblock the channel);
//  2. two locks acquired in opposite orders at different sites, the
//     precondition for an ABBA deadlock.
//
// Locks are identified through go/types as package.Type.field (or
// package.var for globals), so the same mutex reached through
// different receiver names at different sites still unifies. The scan
// is lexical per function body: Lock/RLock adds to the held set,
// Unlock/RUnlock removes, `defer mu.Unlock()` holds to the end of the
// body. sync.Cond.Wait is exempt (it releases the associated lock
// while blocked), and each func literal is scanned with its own empty
// held set — a goroutine body does not inherit the spawner's locks
// lexically.
var AnalyzerLockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no blocking ops under a held mutex; consistent lock acquisition order",
	Run:  runLockOrder,
}

// lockMethodKind classifies sel as a mutex operation on a
// sync.Mutex/sync.RWMutex-typed receiver: +1 acquire, -1 release, 0
// neither.
func (p *Package) lockMethodKind(call *ast.CallExpr) (id string, kind int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	recv := p.typeOf(sel.X)
	if !typeIs(recv, "sync", "Mutex") && !typeIs(recv, "sync", "RWMutex") {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 1
	case "Unlock", "RUnlock":
		kind = -1
	case "TryLock", "TryRLock":
		// TryLock never blocks and its success is branch-dependent;
		// the lexical scan cannot track it, so it is out of scope.
		return "", 0
	default:
		return "", 0
	}
	return p.lockIdentity(sel.X), kind
}

// isBlockingOp reports whether s irreducibly blocks: channel send,
// channel receive, select without default, or WaitGroup.Wait. Returns
// a short description for the diagnostic.
func (p *Package) isBlockingOp(s ast.Stmt) (string, bool) {
	switch v := s.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "", false // default clause: non-blocking
			}
		}
		return "select without default", true
	case *ast.ExprStmt:
		if un, ok := v.X.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			return "channel receive", true
		}
		if call, ok := v.X.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if typeIs(p.typeOf(sel.X), "sync", "WaitGroup") {
					return "WaitGroup.Wait", true
				}
			}
		}
	case *ast.AssignStmt:
		// v := <-ch and v = <-ch
		for _, r := range v.Rhs {
			if un, ok := r.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				if isChanType(p.typeOf(un.X)) {
					return "channel receive", true
				}
			}
		}
	}
	return "", false
}

// lockOrderState accumulates cross-site acquisition orders for one run.
type lockOrderState struct {
	// order maps "a\x00b" (a acquired before b while a held) to the
	// node of the first site that established that direction.
	order map[[2]string]ast.Node
	pkgs  map[[2]string]*Package
}

func runLockOrder(pkgs []*Package) []Finding {
	st := &lockOrderState{
		order: map[[2]string]ast.Node{},
		pkgs:  map[[2]string]*Package{},
	}
	var out []Finding
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, scanLockBody(p, fd.Name.Name, fd.Body, st)...)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Offset < out[j].Pos.Offset })
	return out
}

// scanLockBody walks one function (or func literal) body lexically
// with an empty held set, recursing into nested literals.
func scanLockBody(p *Package, fname string, body *ast.BlockStmt, st *lockOrderState) []Finding {
	var out []Finding
	held := []string{} // acquisition-ordered
	heldSet := map[string]bool{}

	release := func(id string) {
		if !heldSet[id] {
			return
		}
		delete(heldSet, id)
		for i, h := range held {
			if h == id {
				held = append(held[:i], held[i+1:]...)
				break
			}
		}
	}

	// Func literals get their own scan with an empty held set — a
	// goroutine or callback body does not run under the spawner's
	// locks. The statement walk below never descends into them.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, scanLockBody(p, fname+" (func literal)", fl.Body, st)...)
			return false
		}
		return true
	})

	var walkStmt func(s ast.Stmt)
	var walkList func(list []ast.Stmt)
	walkList = func(list []ast.Stmt) {
		for _, s := range list {
			walkStmt(s)
		}
	}
	walkStmt = func(s ast.Stmt) {
		if desc, blocking := p.isBlockingOp(s); blocking && len(held) > 0 {
			out = append(out, p.finding("lockorder", s,
				"%s in %s while %s is held; a stalled peer deadlocks every caller of this lock", desc, fname, held[len(held)-1]))
		}

		switch v := s.(type) {
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				if id, kind := p.lockMethodKind(call); id != "" {
					switch kind {
					case 1:
						if heldSet[id] {
							out = append(out, p.finding("lockorder", s,
								"%s re-acquires %s already held on this path; sync.Mutex is not reentrant", fname, id))
							return
						}
						for _, h := range held {
							recordOrder(p, st, h, id, s, fname, &out)
						}
						held = append(held, id)
						heldSet[id] = true
					case -1:
						release(id)
					}
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the remainder
			// of this lexical body: no release event.
			_ = v
		case *ast.BlockStmt:
			walkList(v.List)
		case *ast.IfStmt:
			if v.Init != nil {
				walkStmt(v.Init)
			}
			// Each arm sees the current held set; mutations inside an
			// arm are kept (lexical, conservative toward reporting).
			walkStmt(v.Body)
			if v.Else != nil {
				walkStmt(v.Else)
			}
		case *ast.ForStmt:
			if v.Init != nil {
				walkStmt(v.Init)
			}
			walkStmt(v.Body)
		case *ast.RangeStmt:
			walkStmt(v.Body)
		case *ast.SwitchStmt:
			if v.Init != nil {
				walkStmt(v.Init)
			}
			walkStmt(v.Body)
		case *ast.TypeSwitchStmt:
			walkStmt(v.Body)
		case *ast.SelectStmt:
			walkStmt(v.Body)
		case *ast.CaseClause:
			walkList(v.Body)
		case *ast.CommClause:
			walkList(v.Body)
		case *ast.LabeledStmt:
			walkStmt(v.Stmt)
		}
	}
	walkList(body.List)
	return out
}

// recordOrder notes that outer was held when inner was acquired, and
// reports when a previous site established the opposite direction.
func recordOrder(p *Package, st *lockOrderState, outer, inner string, at ast.Node, fname string, out *[]Finding) {
	if outer == inner {
		return
	}
	fwd := [2]string{outer, inner}
	rev := [2]string{inner, outer}
	if prev, ok := st.order[rev]; ok {
		prevPkg := st.pkgs[rev]
		prevPos := prevPkg.Fset.Position(prev.Pos())
		*out = append(*out, p.finding("lockorder", at,
			"%s acquires %s then %s, but %s:%d acquires them in the opposite order (ABBA deadlock)",
			fname, outer, inner, prevPos.Filename, prevPos.Line))
		return
	}
	if _, ok := st.order[fwd]; !ok {
		st.order[fwd] = at
		st.pkgs[fwd] = p
	}
}
