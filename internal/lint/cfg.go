package lint

import (
	"go/ast"
)

// This file implements the minimal intra-function control-flow graph
// the flow-aware analyzers (telemetrybracket foremost) reason over.
// Each basic block holds the statements that execute together;
// successors model if/else arms, loop back-edges and switch clauses.
// break/continue are approximated (break exits the innermost
// loop/switch, continue re-enters the innermost loop header); goto and
// labeled branches fall back to conservative edges to the exit, which
// errs toward reporting a path rather than missing one.

// cfgBlock is one basic block.
type cfgBlock struct {
	stmts []ast.Stmt
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. entry leads
// to the first statement; exit is the virtual block every return and
// the final fall-through feed into.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

type cfgBuilder struct {
	g *funcCFG
	// innermost enclosing targets for break/continue
	breakTo    []*cfgBlock
	continueTo []*cfgBlock
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	g.exit = b.newBlock()
	g.entry = b.newBlock()
	last := b.stmts(g.entry, body.List)
	if last != nil {
		b.edge(last, g.exit)
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// stmts threads a statement list through cur, returning the block
// control falls out of (nil when every path diverted — returned,
// branched, or looped away).
func (b *cfgBuilder) stmts(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminal statement still gets a
			// block so its statements are inspectable.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, s)
		b.edge(cur, b.g.exit)
		return nil
	case *ast.BranchStmt:
		cur.stmts = append(cur.stmts, s)
		switch v.Tok.String() {
		case "break":
			if v.Label == nil && len(b.breakTo) > 0 {
				b.edge(cur, b.breakTo[len(b.breakTo)-1])
				return nil
			}
		case "continue":
			if v.Label == nil && len(b.continueTo) > 0 {
				b.edge(cur, b.continueTo[len(b.continueTo)-1])
				return nil
			}
		case "fallthrough":
			return cur // handled by clause chaining approximation below
		}
		// goto / labeled break / labeled continue: conservatively an
		// edge to exit (a path that leaves without further statements).
		b.edge(cur, b.g.exit)
		return nil
	case *ast.BlockStmt:
		return b.stmts(cur, v.List)
	case *ast.IfStmt:
		if v.Init != nil {
			cur = b.stmt(cur, v.Init)
			if cur == nil {
				cur = b.newBlock()
			}
		}
		cur.stmts = append(cur.stmts, s) // the condition evaluates here
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then)
		if last := b.stmts(then, v.Body.List); last != nil {
			b.edge(last, join)
		}
		if v.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			if last := b.stmt(els, v.Else); last != nil {
				b.edge(last, join)
			}
		} else {
			b.edge(cur, join)
		}
		return join
	case *ast.ForStmt:
		if v.Init != nil {
			cur = b.stmt(cur, v.Init)
			if cur == nil {
				cur = b.newBlock()
			}
		}
		head := b.newBlock()
		head.stmts = append(head.stmts, s) // condition/post anchor
		b.edge(cur, head)
		after := b.newBlock()
		if v.Cond != nil {
			b.edge(head, after) // condition false
		}
		body := b.newBlock()
		b.edge(head, body)
		b.breakTo = append(b.breakTo, after)
		b.continueTo = append(b.continueTo, head)
		if last := b.stmts(body, v.Body.List); last != nil {
			b.edge(last, head)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		if v.Cond == nil {
			// for {}: only break reaches after; keep after in the graph.
			_ = after
		}
		return after
	case *ast.RangeStmt:
		head := b.newBlock()
		head.stmts = append(head.stmts, s)
		b.edge(cur, head)
		after := b.newBlock()
		b.edge(head, after) // empty collection
		body := b.newBlock()
		b.edge(head, body)
		b.breakTo = append(b.breakTo, after)
		b.continueTo = append(b.continueTo, head)
		if last := b.stmts(body, v.Body.List); last != nil {
			b.edge(last, head)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		return after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		cur.stmts = append(cur.stmts, s)
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				// init already covered: evaluate in cur
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
			hasDefault = false
		}
		join := b.newBlock()
		b.breakTo = append(b.breakTo, join)
		for _, c := range clauses {
			var body []ast.Stmt
			switch cl := c.(type) {
			case *ast.CaseClause:
				body = cl.Body
				if cl.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				body = cl.Body
				if cl.Comm == nil {
					hasDefault = true
				}
			}
			blk := b.newBlock()
			b.edge(cur, blk)
			if last := b.stmts(blk, body); last != nil {
				b.edge(last, join)
			}
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		if _, isSelect := s.(*ast.SelectStmt); isSelect && !hasDefault && len(clauses) > 0 {
			// a select without default blocks until a case fires: no
			// fall-through edge needed beyond the clauses.
		} else {
			b.edge(cur, join) // no clause matched / default fall-through
		}
		return join
	case *ast.LabeledStmt:
		return b.stmt(cur, v.Stmt)
	default:
		cur.stmts = append(cur.stmts, s)
		return cur
	}
}

// blockOf returns the basic block whose stmts contain s (by identity),
// or nil.
func (g *funcCFG) blockOf(s ast.Stmt) *cfgBlock {
	for _, blk := range g.blocks {
		for _, t := range blk.stmts {
			if t == s {
				return blk
			}
		}
	}
	return nil
}

// reaches reports whether to is reachable from from along successor
// edges, optionally skipping one barrier block (barrier may be nil).
// from == to requires an actual cycle unless zeroLen is true.
func (g *funcCFG) reaches(from, to, barrier *cfgBlock, zeroLen bool) bool {
	if zeroLen && from == to {
		return true
	}
	seen := map[*cfgBlock]bool{}
	stack := []*cfgBlock{}
	push := func(b *cfgBlock) {
		if b != nil && b != barrier && !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
	}
	for _, s := range from.succs {
		push(s)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		for _, s := range b.succs {
			push(s)
		}
	}
	return false
}

// dominatesExit reports whether every path from entry to exit passes
// through blk: removing blk must make exit unreachable.
func (g *funcCFG) dominatesExit(blk *cfgBlock) bool {
	if blk == g.entry {
		return true
	}
	return !g.reaches(g.entry, g.exit, blk, true)
}

// inCycle reports whether blk can reach itself (i.e. lies on a loop).
func (g *funcCFG) inCycle(blk *cfgBlock) bool {
	return g.reaches(blk, blk, nil, false)
}
