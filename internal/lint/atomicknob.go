package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// AnalyzerAtomicKnob enforces the engine's knob-access contract:
// struct fields declared with a sync/atomic type (the engine's
// workers/intervalCap/gridCells/gridVerify knobs and metric cells)
// may be touched only through their atomic methods — never read as
// plain struct values, assigned, or passed around — and sync.Once /
// sync.Mutex / sync.RWMutex / sync.WaitGroup fields must never be
// copied or passed by value (their identity IS the synchronization).
// Functions that take a lock- or atomic-bearing struct of the same
// package by value are flagged for the same reason.
//
// Fields are unexported, so per-package analysis sees every access
// site; matching is by field name against the package's guarded
// structs (a syntactic approximation that is exact while field names
// stay unique, which the fixtures and tree keep true).
var AnalyzerAtomicKnob = &Analyzer{
	Name: "atomicknob",
	Doc:  "atomic knob fields only via Load/Store/CAS; sync fields never by value",
	Run:  runAtomicKnob,
}

// atomicMethods are the only selectors allowed on an atomic-typed
// field.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true,
	"Swap": true, "CompareAndSwap": true,
}

// syncValueTypes are the sync types whose by-value copy is always a
// bug.
var syncValueTypes = map[string]bool{
	"Once": true, "Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Map": true, "Cond": true, "Pool": true,
}

// guardedFields indexes, per package, which field names are atomic
// and which are sync-typed, plus the struct types carrying them.
type guardedFields struct {
	atomic  map[string]string // field name → struct type name
	syncs   map[string]string
	structs map[string]bool // struct type names with any guarded field
}

// isAtomicFieldType matches atomic.X and atomic.Pointer[T] field
// declarations (resolving the file-local name of sync/atomic).
func isAtomicFieldType(imports map[string]string, t ast.Expr) bool {
	switch v := t.(type) {
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok && imports[id.Name] == "sync/atomic" {
			return true
		}
	case *ast.IndexExpr:
		return isAtomicFieldType(imports, v.X)
	case *ast.IndexListExpr:
		return isAtomicFieldType(imports, v.X)
	}
	return false
}

// isSyncFieldType matches sync.Once, sync.Mutex, sync.RWMutex, etc.
func isSyncFieldType(imports map[string]string, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || !syncValueTypes[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && imports[id.Name] == "sync"
}

// collectGuarded indexes the package's guarded struct fields.
func collectGuarded(p *Package) guardedFields {
	g := guardedFields{
		atomic:  map[string]string{},
		syncs:   map[string]string{},
		structs: map[string]bool{},
	}
	for _, f := range p.Files {
		imports := fileImports(f)
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if isAtomicFieldType(imports, fld.Type) {
							g.atomic[name.Name] = ts.Name.Name
							g.structs[ts.Name.Name] = true
						}
						if isSyncFieldType(imports, fld.Type) {
							g.syncs[name.Name] = ts.Name.Name
							g.structs[ts.Name.Name] = true
						}
					}
				}
			}
		}
	}
	return g
}

func runAtomicKnob(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		g := collectGuarded(p)
		if len(g.structs) == 0 {
			continue
		}
		for _, f := range p.Files {
			out = append(out, checkAtomicAccess(p, g, f)...)
			out = append(out, checkByValueSigs(p, g, f)...)
		}
	}
	return out
}

// checkAtomicAccess flags guarded-field selectors used outside the
// allowed forms.
func checkAtomicAccess(p *Package, g guardedFields, f *ast.File) []Finding {
	var out []Finding
	walkWithParents(f, func(n ast.Node, parents []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		owner, isAtomic := g.atomic[sel.Sel.Name]
		syncOwner, isSync := g.syncs[sel.Sel.Name]
		if !isAtomic && !isSync {
			return
		}
		// Only field accesses: the base must itself be an expression
		// (x.field), not a package qualifier, and the name must not be
		// the Sel of an outer selector we already inspected.
		if id, ok := sel.X.(*ast.Ident); ok && id.Obj == nil {
			// Could be a package qualifier (pkg.Name); skip if it
			// resolves to an import.
			if _, imported := fileImports(f)[id.Name]; imported {
				return
			}
		}
		if len(parents) == 0 {
			return
		}
		parent := parents[len(parents)-1]
		// Allowed: receiver of a method call — any method for sync
		// fields (Lock/Unlock/Do/...), the atomic set for atomics.
		if psel, ok := parent.(*ast.SelectorExpr); ok && psel.X == sel {
			if len(parents) >= 2 {
				if call, ok := parents[len(parents)-2].(*ast.CallExpr); ok && call.Fun == psel {
					if isSync {
						return // method call on a sync primitive
					}
					if atomicMethods[psel.Sel.Name] {
						return
					}
					out = append(out, p.finding("atomicknob", sel,
						"atomic field %s.%s used via non-atomic method %s (allowed: %s)",
						owner, sel.Sel.Name, psel.Sel.Name, strings.Join(sortedKeys(atomicMethods), "/")))
					return
				}
			}
		}
		// Allowed: address-of (passing *atomic.X / *sync.Mutex is safe).
		if un, ok := parent.(*ast.UnaryExpr); ok && un.Op.String() == "&" {
			return
		}
		if isAtomic {
			out = append(out, p.finding("atomicknob", sel,
				"atomic field %s.%s read or copied as a value; use %s",
				owner, sel.Sel.Name, strings.Join(sortedKeys(atomicMethods), "/")))
		} else {
			out = append(out, p.finding("atomicknob", sel,
				"sync field %s.%s copied or passed by value; synchronization identity is lost",
				syncOwner, sel.Sel.Name))
		}
	})
	return out
}

// checkByValueSigs flags function signatures (params, results,
// receivers) that take a guarded struct of this package by value.
func checkByValueSigs(p *Package, g guardedFields, f *ast.File) []Finding {
	var out []Finding
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			id, ok := fld.Type.(*ast.Ident)
			if !ok || !g.structs[id.Name] {
				continue
			}
			out = append(out, p.finding("atomicknob", fld,
				"%s of lock/atomic-bearing struct %s passed by value; use *%s", what, id.Name, id.Name))
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			check(v.Recv, "receiver")
			check(v.Type.Params, "parameter")
			check(v.Type.Results, "result")
		case *ast.FuncLit:
			check(v.Type.Params, "parameter")
			check(v.Type.Results, "result")
		}
		return true
	})
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
