package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerAtomicKnob enforces the engine's knob-access contract:
// struct fields declared with a sync/atomic type (the engine's
// workers/intervalCap/gridCells/gridVerify knobs and metric cells)
// may be touched only through their atomic methods — never read as
// plain struct values, assigned, or passed around — and sync.Once /
// sync.Mutex / sync.RWMutex / sync.WaitGroup fields must never be
// copied or passed by value (their identity IS the synchronization).
// Functions that take a lock- or atomic-bearing struct by value are
// flagged for the same reason.
//
// Fields resolve through go/types selections, so renamed imports,
// embedded structs and aliased types all classify correctly; the
// name-collision caveat of the syntactic version is gone.
var AnalyzerAtomicKnob = &Analyzer{
	Name: "atomicknob",
	Doc:  "atomic knob fields only via Load/Store/CAS; sync fields never by value",
	Run:  runAtomicKnob,
}

// atomicMethods are the only selectors allowed on an atomic-typed
// field.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true,
	"Swap": true, "CompareAndSwap": true,
}

// syncValueTypes are the sync types whose by-value copy is always a
// bug.
var syncValueTypes = map[string]bool{
	"Once": true, "Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Map": true, "Cond": true, "Pool": true,
}

// isAtomicType reports whether t is a type from sync/atomic
// (atomic.Int64, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isSyncValueType reports whether t is one of the sync types whose
// by-value copy loses synchronization identity.
func isSyncValueType(t types.Type) bool {
	n := namedType(t)
	if n == nil || !syncValueTypes[n.Obj().Name()] {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync"
}

// guardedStruct reports whether t is a named struct type directly
// declaring an atomic- or sync-typed field.
func guardedStruct(t types.Type) (name string, guarded bool) {
	n := namedType(t)
	if n == nil {
		return "", false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isAtomicType(ft) || isSyncValueType(ft) {
			return n.Obj().Name(), true
		}
	}
	return "", false
}

func runAtomicKnob(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			out = append(out, checkAtomicAccess(p, f)...)
			out = append(out, checkByValueSigs(p, f)...)
		}
	}
	return out
}

// checkAtomicAccess flags guarded-field selectors used outside the
// allowed forms.
func checkAtomicAccess(p *Package, f *ast.File) []Finding {
	var out []Finding
	walkWithParents(f, func(n ast.Node, parents []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fld := p.selectionField(sel)
		if fld == nil {
			return
		}
		isAtomic := isAtomicType(fld.Type())
		isSync := isSyncValueType(fld.Type())
		if !isAtomic && !isSync {
			return
		}
		owner := p.fieldOwnerName(fld)
		if owner == "" {
			owner = "?"
		}
		if len(parents) == 0 {
			return
		}
		parent := parents[len(parents)-1]
		// Allowed: receiver of a method call — any method for sync
		// fields (Lock/Unlock/Do/...), the atomic set for atomics.
		if psel, ok := parent.(*ast.SelectorExpr); ok && psel.X == sel {
			if len(parents) >= 2 {
				if call, ok := parents[len(parents)-2].(*ast.CallExpr); ok && call.Fun == psel {
					if isSync {
						return // method call on a sync primitive
					}
					if atomicMethods[psel.Sel.Name] {
						return
					}
					out = append(out, p.finding("atomicknob", sel,
						"atomic field %s.%s used via non-atomic method %s (allowed: %s)",
						owner, sel.Sel.Name, psel.Sel.Name, strings.Join(sortedKeys(atomicMethods), "/")))
					return
				}
			}
		}
		// Allowed: address-of (passing *atomic.X / *sync.Mutex is safe).
		if un, ok := parent.(*ast.UnaryExpr); ok && un.Op.String() == "&" {
			return
		}
		if isAtomic {
			out = append(out, p.finding("atomicknob", sel,
				"atomic field %s.%s read or copied as a value; use %s",
				owner, sel.Sel.Name, strings.Join(sortedKeys(atomicMethods), "/")))
		} else {
			out = append(out, p.finding("atomicknob", sel,
				"sync field %s.%s copied or passed by value; synchronization identity is lost",
				owner, sel.Sel.Name))
		}
	})
	return out
}

// checkByValueSigs flags function signatures (params, results,
// receivers) that take a guarded struct by value.
func checkByValueSigs(p *Package, f *ast.File) []Finding {
	var out []Finding
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			t := p.typeOf(fld.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue // by pointer: identity preserved
			}
			if isSyncValueType(t) || isAtomicType(t) {
				n := namedType(t)
				out = append(out, p.finding("atomicknob", fld,
					"%s takes %s by value; synchronization identity is lost, use a pointer",
					what, n.Obj().Name()))
				continue
			}
			if name, guarded := guardedStruct(t); guarded {
				out = append(out, p.finding("atomicknob", fld,
					"%s of lock/atomic-bearing struct %s passed by value; use *%s", what, name, name))
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			check(v.Recv, "receiver")
			check(v.Type.Params, "parameter")
			check(v.Type.Results, "result")
		case *ast.FuncLit:
			check(v.Type.Params, "parameter")
			check(v.Type.Results, "result")
		}
		return true
	})
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
