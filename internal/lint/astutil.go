package lint

import (
	"go/ast"
	"strings"
)

// recvTypeName returns the base type name of a method receiver
// ("Engine" for *Engine, Engine, or a generic instantiation) and
// whether the receiver is a pointer.
func recvTypeName(fd *ast.FuncDecl) (name string, pointer bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		pointer = true
		t = st.X
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name, pointer
	case *ast.IndexExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name, pointer
		}
	case *ast.IndexListExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name, pointer
		}
	}
	return "", pointer
}

// hasDirective reports whether a comment group contains the given
// //moglint: directive line.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// fileHasDirective reports whether the file's package doc comment
// carries the directive; a file-level directive puts every function
// in the file in the analyzer's scope. Only the doc comment counts —
// a function-level directive elsewhere in the file must not widen the
// scope to its neighbors.
func fileHasDirective(f *ast.File, directive string) bool {
	return hasDirective(f.Doc, directive)
}

// lineDirective reports whether any comment in the file carries the
// directive on the given line — for statements (go statements, loops)
// that have no doc comment of their own, an end-of-line or
// preceding-line //moglint: comment opts them out.
func lineDirective(p *Package, f *ast.File, line int, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) != directive {
				continue
			}
			cl := p.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// calleeName returns the bare method/function name of a call
// expression ("" when the callee is not an identifier or selector).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// walkWithParents traverses the AST depth-first, calling visit with
// each node and its ancestor stack (outermost first).
func walkWithParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
