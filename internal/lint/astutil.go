package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// fileImports maps each file-local package name to its import path
// (explicit names respected, otherwise the last path element).
func fileImports(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		out[name] = path
	}
	return out
}

// pkgSel reports whether e is a selector pkg.Name where pkg is the
// file-local name of an import whose path equals importPath.
func pkgSel(imports map[string]string, e ast.Expr, importPath, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && imports[id.Name] == importPath
}

// selOnImport returns the import path of the package a selector's
// base identifier refers to ("" when the base is not an import).
func selOnImport(imports map[string]string, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Obj != nil { // a resolved Obj means a local, not an import
		return ""
	}
	return imports[id.Name]
}

// recvTypeName returns the base type name of a method receiver
// ("Engine" for *Engine, Engine, or a generic instantiation) and
// whether the receiver is a pointer.
func recvTypeName(fd *ast.FuncDecl) (name string, pointer bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		pointer = true
		t = st.X
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name, pointer
	case *ast.IndexExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name, pointer
		}
	case *ast.IndexListExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name, pointer
		}
	}
	return "", pointer
}

// constIndex collects the package-level constant names of a package
// (parser object resolution is file-scoped, so cross-file constant
// references need this index).
func constIndex(p *Package) map[string]bool {
	out := map[string]bool{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, n := range vs.Names {
					out[n.Name] = true
				}
			}
		}
	}
	return out
}

// isConstString reports whether e is an untyped-constant string
// expression: a string literal, a reference to a constant, or a
// concatenation of such.
func isConstString(consts map[string]bool, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.STRING
	case *ast.Ident:
		if v.Obj != nil {
			return v.Obj.Kind == ast.Con
		}
		return consts[v.Name]
	case *ast.BinaryExpr:
		return v.Op == token.ADD && isConstString(consts, v.X) && isConstString(consts, v.Y)
	case *ast.ParenExpr:
		return isConstString(consts, v.X)
	}
	return false
}

// constStringValue resolves the literal value of a constant string
// expression when every part is a string literal in view; ok=false
// when the value cannot be determined syntactically (e.g. a constant
// declared elsewhere).
func constStringValue(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		a, okA := constStringValue(v.X)
		b, okB := constStringValue(v.Y)
		return a + b, okA && okB
	case *ast.ParenExpr:
		return constStringValue(v.X)
	case *ast.Ident:
		if v.Obj == nil {
			return "", false
		}
		vs, ok := v.Obj.Decl.(*ast.ValueSpec)
		if !ok {
			return "", false
		}
		for i, n := range vs.Names {
			if n.Name == v.Name && i < len(vs.Values) {
				return constStringValue(vs.Values[i])
			}
		}
	}
	return "", false
}

// hasDirective reports whether a comment group contains the given
// //moglint: directive line.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// fileHasDirective reports whether the file's package doc comment
// carries the directive; a file-level directive puts every function
// in the file in the analyzer's scope. Only the doc comment counts —
// a function-level directive elsewhere in the file must not widen the
// scope to its neighbors.
func fileHasDirective(f *ast.File, directive string) bool {
	return hasDirective(f.Doc, directive)
}

// funcResultIndex maps each function or method name of the package to
// its sole result type expression (functions with zero or multiple
// results are omitted). Name collisions across receivers keep the
// first declaration — acceptable for the syntactic map-type oracle.
func funcResultIndex(p *Package) map[string]ast.Expr {
	out := map[string]ast.Expr{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Type.Results == nil {
				continue
			}
			if len(fd.Type.Results.List) != 1 || len(fd.Type.Results.List[0].Names) > 1 {
				continue
			}
			if _, dup := out[fd.Name.Name]; !dup {
				out[fd.Name.Name] = fd.Type.Results.List[0].Type
			}
		}
	}
	return out
}

// calleeName returns the bare method/function name of a call
// expression ("" when the callee is not an identifier or selector).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// walkWithParents traverses the AST depth-first, calling visit with
// each node and its ancestor stack (outermost first).
func walkWithParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
