package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterministicDirective marks a function (in its doc comment) or a
// whole file (any comment line) as contractually deterministic: its
// answers must be bit-identical run to run and to the serial path.
const DeterministicDirective = "moglint:deterministic"

// AnalyzerDeterminism enforces that contract inside the marked scope —
// the engine's parallel query methods, the cache/prefilter helpers
// they fan out through, and the agggrid hot paths:
//
//   - no time.Now (wall-clock answers differ run to run);
//   - no math/rand (seeded or not, it has no place in a query answer);
//   - no result assembly ordered by map iteration: a range over a
//     map-typed expression that appends to a slice declared outside
//     the loop must be followed by a sort of that slice in the same
//     function, or the result order changes between runs.
//
// Map-ness, time.Now and math/rand all resolve through go/types, so
// aliased imports, named map types and map-returning methods from
// other packages are seen.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic hot paths: no wall-clock, no rand, no map-ordered results",
	Run:  runDeterminism,
}

func runDeterminism(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, f := range p.Files {
			fileScoped := fileHasDirective(f, DeterministicDirective)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !fileScoped && !hasDirective(fd.Doc, DeterministicDirective) {
					continue
				}
				out = append(out, checkDeterministic(p, fd)...)
			}
		}
	}
	return out
}

func checkDeterministic(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if p.pkgFunc(v, "time", "Now") {
				out = append(out, p.finding("determinism", v,
					"time.Now in deterministic function %s; answers must be bit-identical run to run", fd.Name.Name))
			}
		case *ast.SelectorExpr:
			if obj := p.objectOf(v.Sel); obj != nil && obj.Pkg() != nil {
				if path := obj.Pkg().Path(); path == "math/rand" || path == "math/rand/v2" {
					out = append(out, p.finding("determinism", v,
						"math/rand use in deterministic function %s", fd.Name.Name))
				}
			}
		case *ast.RangeStmt:
			out = append(out, checkMapRange(p, fd, v)...)
		}
		return true
	})
	return out
}

// isMapExpr asks the type checker whether e's underlying type is a
// map.
func (p *Package) isMapExpr(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange flags map-iteration result assembly without a
// restoring sort.
func checkMapRange(p *Package, fd *ast.FuncDecl, rng *ast.RangeStmt) []Finding {
	if !p.isMapExpr(rng.X) {
		return nil
	}
	// Collect appends inside the range body whose target is declared
	// outside the body (result accumulation, not a body-local scratch).
	var out []Finding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		target, ok := as.Lhs[0].(*ast.Ident)
		if !ok || target.Obj == nil {
			return true
		}
		if declaredWithin(target.Obj, rng.Body) {
			return true // scratch slice local to the iteration
		}
		if sortedAfter(p, fd, target.Obj, rng.End()) {
			return true
		}
		out = append(out, p.finding("determinism", as,
			"slice %q assembled in map-iteration order in deterministic function %s without a later sort",
			target.Name, fd.Name.Name))
		return true
	})
	return out
}

// declaredWithin reports whether the object's declaration lies inside
// node n.
func declaredWithin(obj *ast.Object, n ast.Node) bool {
	decl, ok := obj.Decl.(ast.Node)
	if !ok {
		return false
	}
	return decl.Pos() >= n.Pos() && decl.End() <= n.End()
}

// sortedAfter reports whether the function sorts the given slice
// variable (sort.Slice, sort.SliceStable, sort.Sort, sort.Strings,
// sort.Ints, sort.Float64s, or slices.Sort*) at a position after pos.
func sortedAfter(p *Package, fd *ast.FuncDecl, obj *ast.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < pos {
			return !found
		}
		fn := p.calleeObj(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Obj == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
