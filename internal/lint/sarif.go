package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// This file renders findings as SARIF 2.1.0, the interchange format
// code-scanning UIs (GitHub code scanning foremost) ingest. One run
// per report: the tool driver lists every analyzer as a rule so the
// UI can show the invariant's description next to each finding, and
// results carry file-relative locations so annotations attach to the
// right lines of a pull request.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings of the given analyzers as a SARIF
// 2.1.0 log. File paths are made relative to root (the repository
// root) with forward slashes, as code-scanning uploads require; a
// finding outside root keeps its absolute path. An empty findings
// slice still produces a valid log with an empty results array — a
// clean run is an uploadable result, not an error.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.File
		if rel, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "moglint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
