package lint

import (
	"go/ast"
)

// AnalyzerTelemetryBracket enforces the PR 6 contract: every exported
// Querier method on an Engine or ShardedEngine receiver — exported,
// context first, error last — runs the telemetry begin/done bracket
// exactly once on every return path:
//
//   - the method's body opens with `qc, ctx, done := recv.begin(...)`
//     (ShardedEngine's scattered methods bracket through se.global);
//   - `defer done(&err)` is registered in the same basic block — before
//     any branch, loop or return can leave the method — and &err names
//     the method's named error result, so the classifier observes the
//     real outcome;
//   - the begin call dominates every exit and does not sit on a cycle,
//     so the bracket cannot run zero or two times;
//   - a routed method whose whole body is `return recv.global.Same(...)`
//     delegates the bracket to the inner engine and is exempt;
//   - `//moglint:nobracket` on the method's doc comment exempts
//     exported error-returning methods that are not queries.
//
// Helper functions must not open brackets of their own: a begin
// assignment anywhere else in the package double-records the query.
// The analysis runs over the real control-flow graph (cfg.go), not
// lexical statement order.
var AnalyzerTelemetryBracket = &Analyzer{
	Name: "telemetrybracket",
	Doc:  "Querier methods run the telemetry begin/done bracket exactly once on all paths",
	Run:  runTelemetryBracket,
}

// bracketReceiverName reports whether a named receiver is one of the
// engine facades carrying the bracket contract.
func bracketReceiverName(name string) bool {
	return name == "Engine" || name == "ShardedEngine"
}

// isBeginAssign matches `a, b, done := x.begin(...)` (or beginShard),
// returning the `done` identifier. The receiver must resolve to an
// Engine-named type so unrelated begin methods stay out of scope.
func (p *Package) isBeginAssign(s ast.Stmt) (*ast.Ident, bool) {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 3 {
		return nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn.Sel.Name != "begin" || !typeNameIs(p.typeOf(fn.X), "Engine") {
			return nil, false
		}
	case *ast.Ident:
		if fn.Name != "beginShard" {
			return nil, false
		}
	default:
		return nil, false
	}
	done, ok := as.Lhs[2].(*ast.Ident)
	if !ok {
		return nil, false
	}
	return done, true
}

// isDeferDone matches `defer done(&err)` for the given done variable,
// returning the &-operand identifier.
func isDeferDone(s ast.Stmt, done *ast.Ident) (*ast.Ident, bool) {
	ds, ok := s.(*ast.DeferStmt)
	if !ok {
		return nil, false
	}
	fn, ok := ds.Call.Fun.(*ast.Ident)
	if !ok || done == nil || fn.Obj == nil || fn.Obj != done.Obj {
		return nil, false
	}
	if len(ds.Call.Args) != 1 {
		return nil, true
	}
	un, ok := ds.Call.Args[0].(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil, true
	}
	id, _ := un.X.(*ast.Ident)
	return id, true
}

// isDelegation reports whether the body is a pure routed delegation:
// a single `return <expr>.SameName(args...)` whose callee expression
// resolves to an Engine-named type.
func (p *Package) isDelegation(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fd.Name.Name {
		return false
	}
	return typeNameIs(p.typeOf(sel.X), "Engine")
}

// querierMethod reports whether fd is in the bracket contract's scope:
// an exported method on Engine/ShardedEngine taking context first and
// returning error last.
func querierMethod(p *Package, fd *ast.FuncDecl) bool {
	if fd.Body == nil || !fd.Name.IsExported() {
		return false
	}
	recv := p.receiverType(fd)
	if recv == nil || !bracketReceiverName(recv.Obj().Name()) {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 || !isContextType(p.typeOf(params.List[0].Type)) {
		return false
	}
	return lastResultIsError(p, fd)
}

// namedErrResult returns the identifier of the function's named final
// error result (nil when unnamed).
func namedErrResult(fd *ast.FuncDecl) *ast.Ident {
	r := fd.Type.Results
	if r == nil || len(r.List) == 0 {
		return nil
	}
	last := r.List[len(r.List)-1]
	if len(last.Names) == 0 {
		return nil
	}
	return last.Names[len(last.Names)-1]
}

func runTelemetryBracket(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		// The package must define the bracket to be in scope at all.
		definesBracket := false
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					name, _ := recvTypeName(fd)
					if fd.Name.Name == "begin" && bracketReceiverName(name) {
						definesBracket = true
					}
					if fd.Name.Name == "beginShard" && fd.Recv == nil {
						definesBracket = true
					}
				}
			}
		}
		if !definesBracket {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkBracket(p, fd)...)
			}
		}
	}
	return out
}

func checkBracket(p *Package, fd *ast.FuncDecl) []Finding {
	inScope := querierMethod(p, fd) && !hasDirective(fd.Doc, "moglint:nobracket")

	// Locate every begin assignment in the body (closures excluded:
	// a bracket opened inside a spawned worker is its own defect).
	type beginSite struct {
		stmt ast.Stmt
		done *ast.Ident
	}
	var begins []beginSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			if done, ok := p.isBeginAssign(s); ok {
				begins = append(begins, beginSite{stmt: s, done: done})
			}
		}
		return true
	})

	var out []Finding
	if !inScope {
		// The bracket definition itself and routed delegations aside,
		// helpers must not open brackets.
		if fd.Name.Name == "begin" || fd.Name.Name == "beginShard" {
			return nil
		}
		for _, b := range begins {
			out = append(out, p.finding("telemetrybracket", b.stmt,
				"telemetry bracket opened in %s, which is not an exported Querier method; the query is double-recorded", fd.Name.Name))
		}
		return out
	}

	if p.isDelegation(fd) {
		if len(begins) > 0 {
			out = append(out, p.finding("telemetrybracket", begins[0].stmt,
				"routed method %s both delegates and opens its own bracket", fd.Name.Name))
		}
		return out
	}

	if len(begins) == 0 {
		out = append(out, p.finding("telemetrybracket", fd.Name,
			"exported Querier method %s never runs the telemetry begin/done bracket", fd.Name.Name))
		return out
	}
	if len(begins) > 1 {
		for _, b := range begins[1:] {
			out = append(out, p.finding("telemetrybracket", b.stmt,
				"second telemetry bracket in %s; the bracket must run exactly once", fd.Name.Name))
		}
		return out
	}

	b := begins[0]
	g := buildCFG(fd.Body)
	blk := g.blockOf(b.stmt)
	if blk == nil {
		return out // statement buried somewhere the CFG did not model
	}
	if !g.dominatesExit(blk) {
		out = append(out, p.finding("telemetrybracket", b.stmt,
			"telemetry bracket in %s does not dominate every return; some paths exit unrecorded", fd.Name.Name))
	}
	if g.inCycle(blk) {
		out = append(out, p.finding("telemetrybracket", b.stmt,
			"telemetry bracket in %s sits inside a loop; the bracket must run exactly once", fd.Name.Name))
	}

	// defer done(&err) must land in the same basic block as begin:
	// no branch, loop or return may come between.
	var deferArg *ast.Ident
	deferFound := false
	started := false
	for _, s := range blk.stmts {
		if s == b.stmt {
			started = true
			continue
		}
		if !started {
			continue
		}
		if arg, ok := isDeferDone(s, b.done); ok {
			deferFound = true
			deferArg = arg
			break
		}
	}
	if !deferFound {
		out = append(out, p.finding("telemetrybracket", b.stmt,
			"begin in %s is not followed by `defer done(&err)` before control can branch; a panic or early return escapes the bracket", fd.Name.Name))
		return out
	}
	errRes := namedErrResult(fd)
	if errRes == nil {
		out = append(out, p.finding("telemetrybracket", fd.Type,
			"%s defers done(&err) but has no named error result for it to observe", fd.Name.Name))
	} else if deferArg == nil || deferArg.Obj == nil || deferArg.Obj != errRes.Obj {
		out = append(out, p.finding("telemetrybracket", b.stmt,
			"defer done(...) in %s does not pass the address of the named error result %s; outcomes are misclassified", fd.Name.Name, errRes.Name))
	}
	return out
}
