package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxFirst enforces the cancellation-plumbing contract that
// the robustness layer rests on:
//
//  1. every exported method on an Engine or System receiver whose
//     last result is an error — the query entry points — takes a
//     context.Context as its first parameter, so no new entry point
//     can silently opt out of deadlines, budgets, and cancellation;
//  2. a context.Context parameter is always the first parameter
//     (Go convention, and what keeps call sites greppable);
//  3. inside a ctx-first function, every goroutine started with a go
//     statement mentions that context somewhere in the spawned
//     expression, so fan-out work cannot detach from the query's
//     cancellation scope.
//
// Parameter types resolve through go/types, so renamed context
// imports and files that never import context at all are both
// checked; rule 3 accepts any mention of the context variable (or an
// explicit context.Background()/context.TODO(), which documents a
// deliberate detach). A `//moglint:ctxexempt` directive on the
// function's doc comment skips it entirely.
var AnalyzerCtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "query entry points take ctx first and goroutines inherit it",
	Run:  runCtxFirst,
}

func runCtxFirst(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || hasDirective(fd.Doc, "moglint:ctxexempt") {
					continue
				}
				out = append(out, checkCtxFirst(p, fd)...)
			}
		}
	}
	return out
}

// ctxParam locates the first context.Context parameter of fd: the
// flattened position it starts at (a field with k names occupies k
// positions), its name, and its resolved object. found=false when the
// function takes no context.
func ctxParam(p *Package, fd *ast.FuncDecl) (pos int, name string, obj *ast.Object, found bool) {
	n := 0
	for _, field := range fd.Type.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1 // unnamed parameter
		}
		if isContextType(p.typeOf(field.Type)) {
			if len(field.Names) > 0 {
				return n, field.Names[0].Name, field.Names[0].Obj, true
			}
			return n, "", nil, true
		}
		n += width
	}
	return 0, "", nil, false
}

// lastResultIsError reports whether fd's final result type is the
// builtin error interface itself.
func lastResultIsError(p *Package, fd *ast.FuncDecl) bool {
	r := fd.Type.Results
	if r == nil || len(r.List) == 0 {
		return false
	}
	t := p.typeOf(r.List[len(r.List)-1].Type)
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// entryPointReceiver reports whether fd is a method on one of the
// engine facades whose exported error-returning methods form the
// query API.
func entryPointReceiver(p *Package, fd *ast.FuncDecl) bool {
	n := p.receiverType(fd)
	if n == nil {
		// Fall back to the syntactic receiver name when the checker
		// could not resolve the type.
		name, _ := recvTypeName(fd)
		return name == "Engine" || name == "System"
	}
	return n.Obj().Name() == "Engine" || n.Obj().Name() == "System"
}

func checkCtxFirst(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	pos, name, obj, found := ctxParam(p, fd)

	// Rule 1: exported query entry points must accept a context.
	if !found && entryPointReceiver(p, fd) && fd.Name.IsExported() && lastResultIsError(p, fd) {
		recv, _ := recvTypeName(fd)
		out = append(out, p.finding("ctxfirst", fd.Name,
			"exported query entry point %s.%s returns error but takes no context.Context", recv, fd.Name.Name))
	}
	if !found {
		return out
	}

	// Rule 2: the context parameter comes first.
	if pos != 0 {
		out = append(out, p.finding("ctxfirst", fd.Type.Params,
			"context.Context parameter of %s must be the first parameter", fd.Name.Name))
	}

	// Rule 3: goroutines spawned here must inherit the context.
	if fd.Body == nil || name == "" || name == "_" {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !mentionsCtx(p, gs.Call, name, obj) {
			out = append(out, p.finding("ctxfirst", gs,
				"goroutine in %s does not reference its context %q (cancellation cannot reach it)", fd.Name.Name, name))
		}
		return true
	})
	return out
}

// mentionsCtx reports whether the subtree references the context
// variable (by object identity, falling back to the name for idents
// the parser could not resolve) or makes an explicit
// context.Background()/context.TODO() detach.
func mentionsCtx(p *Package, root ast.Node, name string, obj *ast.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.Ident:
			if (obj != nil && v.Obj == obj) || (v.Obj == nil && v.Name == name) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if p.pkgFunc(v, "context", "Background") || p.pkgFunc(v, "context", "TODO") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
