package lint

import (
	"go/ast"
)

// AnalyzerCtxFirst enforces the cancellation-plumbing contract that
// the robustness layer rests on:
//
//  1. every exported method on an Engine or System receiver whose
//     last result is an error — the query entry points — takes a
//     context.Context as its first parameter, so no new entry point
//     can silently opt out of deadlines, budgets, and cancellation;
//  2. a context.Context parameter is always the first parameter
//     (Go convention, and what keeps call sites greppable);
//  3. inside a ctx-first function, every goroutine started with a go
//     statement mentions that context somewhere in the spawned
//     expression, so fan-out work cannot detach from the query's
//     cancellation scope.
//
// The check is syntactic: a context parameter is recognized as a
// pkg.Context selector on an import of the standard "context"
// package, and rule 3 accepts any mention of the context variable (or
// an explicit context.Background()/context.TODO(), which documents a
// deliberate detach). A `//moglint:ctxexempt` directive on the
// function's doc comment skips it entirely.
var AnalyzerCtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "query entry points take ctx first and goroutines inherit it",
	Run:  runCtxFirst,
}

func runCtxFirst(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, f := range p.Files {
			imports := fileImports(f)
			if imports["context"] != "context" {
				continue // file cannot name the context type
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || hasDirective(fd.Doc, "moglint:ctxexempt") {
					continue
				}
				out = append(out, checkCtxFirst(p, imports, fd)...)
			}
		}
	}
	return out
}

// isCtxParamType reports whether t is the context.Context type.
func isCtxParamType(imports map[string]string, t ast.Expr) bool {
	return pkgSel(imports, t, "context", "Context")
}

// ctxParam locates the first context.Context parameter of fd: the
// flattened position it starts at (a field with k names occupies k
// positions), its name, and its resolved object. found=false when the
// function takes no context.
func ctxParam(imports map[string]string, fd *ast.FuncDecl) (pos int, name string, obj *ast.Object, found bool) {
	n := 0
	for _, field := range fd.Type.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1 // unnamed parameter
		}
		if isCtxParamType(imports, field.Type) {
			if len(field.Names) > 0 {
				return n, field.Names[0].Name, field.Names[0].Obj, true
			}
			return n, "", nil, true
		}
		n += width
	}
	return 0, "", nil, false
}

// lastResultIsError reports whether fd's final result type is the
// builtin error.
func lastResultIsError(fd *ast.FuncDecl) bool {
	r := fd.Type.Results
	if r == nil || len(r.List) == 0 {
		return false
	}
	id, ok := r.List[len(r.List)-1].Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// entryPointReceiver reports whether fd is a method on one of the
// engine facades whose exported error-returning methods form the
// query API.
func entryPointReceiver(fd *ast.FuncDecl) bool {
	name, _ := recvTypeName(fd)
	return name == "Engine" || name == "System"
}

func checkCtxFirst(p *Package, imports map[string]string, fd *ast.FuncDecl) []Finding {
	var out []Finding
	pos, name, obj, found := ctxParam(imports, fd)

	// Rule 1: exported query entry points must accept a context.
	if !found && entryPointReceiver(fd) && fd.Name.IsExported() && lastResultIsError(fd) {
		recv, _ := recvTypeName(fd)
		out = append(out, p.finding("ctxfirst", fd.Name,
			"exported query entry point %s.%s returns error but takes no context.Context", recv, fd.Name.Name))
	}
	if !found {
		return out
	}

	// Rule 2: the context parameter comes first.
	if pos != 0 {
		out = append(out, p.finding("ctxfirst", fd.Type.Params,
			"context.Context parameter of %s must be the first parameter", fd.Name.Name))
	}

	// Rule 3: goroutines spawned here must inherit the context.
	if fd.Body == nil || name == "" || name == "_" {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !mentionsCtx(gs.Call, imports, name, obj) {
			out = append(out, p.finding("ctxfirst", gs,
				"goroutine in %s does not reference its context %q (cancellation cannot reach it)", fd.Name.Name, name))
		}
		return true
	})
	return out
}

// mentionsCtx reports whether the subtree references the context
// variable (by object identity, falling back to the name for idents
// the parser could not resolve) or makes an explicit
// context.Background()/context.TODO() detach.
func mentionsCtx(root ast.Node, imports map[string]string, name string, obj *ast.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.Ident:
			if (obj != nil && v.Obj == obj) || (v.Obj == nil && v.Name == name) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if pkgSel(imports, v.Fun, "context", "Background") || pkgSel(imports, v.Fun, "context", "TODO") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
