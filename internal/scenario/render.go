package scenario

import (
	"fmt"
	"math"
	"strings"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/moft"
)

// RenderASCII draws the Figure-1 scene as a character map: low-income
// regions shaded with '.', the river as '~', schools as 'S', stores
// as '$', sampled bus positions as the object digit, and interpolated
// trajectory legs as '*'.
func (s *Scenario) RenderASCII(width int) string {
	if width < 20 {
		width = 80
	}
	extent := s.Lbox.BBox()
	aspect := extent.Height() / extent.Width()
	height := int(float64(width) * aspect * 0.5) // terminal cells are ~2:1
	if height < 10 {
		height = 10
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	toCell := func(p geom.Point) (int, int) {
		cx := int((p.X - extent.MinX) / extent.Width() * float64(width-1))
		cy := int((p.Y - extent.MinY) / extent.Height() * float64(height-1))
		// Flip y: row 0 is the top.
		return height - 1 - cy, cx
	}
	set := func(p geom.Point, ch byte) {
		r, c := toCell(p)
		if r >= 0 && r < height && c >= 0 && c < width {
			grid[r][c] = ch
		}
	}

	// Shade low-income polygons.
	lowPgs := s.LowIncomePolygons()
	for r := 0; r < height; r++ {
		for c := 0; c < width; c++ {
			x := extent.MinX + (float64(c)+0.5)/float64(width)*extent.Width()
			y := extent.MinY + (float64(height-1-r)+0.5)/float64(height)*extent.Height()
			for _, pg := range lowPgs {
				if pg.ContainsPoint(geom.Pt(x, y)) {
					grid[r][c] = '.'
					break
				}
			}
		}
	}

	// Neighborhood boundaries.
	for _, id := range s.Ln.IDs(layer.KindPolygon) {
		pg, _ := s.Ln.Polygon(id)
		drawRing(pg.Shell, set, '+')
	}
	// River.
	river, _ := s.Lr.Polyline(1)
	drawPolyline(river, set, '~')
	// Schools and stores.
	for _, id := range s.Ls.IDs(layer.KindNode) {
		p, _ := s.Ls.Node(id)
		set(p, 'S')
	}
	for _, id := range s.Lstores.IDs(layer.KindNode) {
		p, _ := s.Lstores.Node(id)
		set(p, '$')
	}
	// Trajectory legs then sample positions (samples on top).
	for _, oid := range s.FMbus.Objects() {
		tps := s.FMbus.ObjectTuples(oid)
		for i := 1; i < len(tps); i++ {
			drawPolyline(geom.Polyline{tps[i-1].Point(), tps[i].Point()}, set, '*')
		}
	}
	for _, oid := range s.FMbus.Objects() {
		for _, tp := range s.FMbus.ObjectTuples(oid) {
			set(tp.Point(), byte('0'+oid%10))
		}
	}

	var sb strings.Builder
	sb.WriteString("Figure 1 — the moving objects example ('.' low income, '~' river, digits = bus samples)\n")
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString(s.legend())
	return sb.String()
}

func (s *Scenario) legend() string {
	var sb strings.Builder
	sb.WriteString("objects:\n")
	for _, oid := range s.FMbus.Objects() {
		tps := s.FMbus.ObjectTuples(oid)
		names := make([]string, len(tps))
		for i, tp := range tps {
			ids := s.Ln.PolygonsContaining(tp.Point())
			name := "?"
			if len(ids) > 0 {
				if m, ok := s.Ln.AlphaInverse("neighb", ids[0]); ok {
					name = m
				}
			}
			names[i] = fmt.Sprintf("t%d@%s", hourIndex(tp), name)
		}
		fmt.Fprintf(&sb, "  O%d: %s\n", oid, strings.Join(names, " -> "))
	}
	return sb.String()
}

func hourIndex(tp moft.Tuple) int { return tp.T.Civil().Hour - 8 }

func drawRing(r geom.Ring, set func(geom.Point, byte), ch byte) {
	for i := range r {
		drawPolyline(geom.Polyline{r[i], r[(i+1)%len(r)]}, set, ch)
	}
}

func drawPolyline(pl geom.Polyline, set func(geom.Point, byte), ch byte) {
	for i := 0; i < pl.NumSegments(); i++ {
		seg := pl.Segment(i)
		steps := int(math.Ceil(seg.Length())) * 2
		if steps < 2 {
			steps = 2
		}
		for k := 0; k <= steps; k++ {
			set(seg.At(float64(k)/float64(steps)), ch)
		}
	}
}

// RenderSVG draws the scene as a standalone SVG document.
func (s *Scenario) RenderSVG() string {
	extent := s.Lbox.BBox()
	scale := 20.0
	w := extent.Width() * scale
	h := extent.Height() * scale
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, h, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	tx := func(p geom.Point) (float64, float64) {
		return (p.X - extent.MinX) * scale, h - (p.Y-extent.MinY)*scale
	}
	// Neighborhoods (low income shaded).
	lowSet := map[layer.Gid]bool{}
	for _, m := range s.Neighborhoods.Members("neighborhood") {
		if v, ok := s.Neighborhoods.Attr("neighborhood", m, "income"); ok {
			if inc, _ := v.Num(); inc < LowIncomeThreshold {
				_, id, _ := s.Ln.Alpha("neighb", string(m))
				lowSet[id] = true
			}
		}
	}
	for _, id := range s.Ln.IDs(layer.KindPolygon) {
		pg, _ := s.Ln.Polygon(id)
		fill := "#f0f0f0"
		if lowSet[id] {
			fill = "#c9c9c9"
		}
		sb.WriteString(`<polygon points="`)
		for i, p := range pg.Shell {
			if i > 0 {
				sb.WriteByte(' ')
			}
			x, y := tx(p)
			fmt.Fprintf(&sb, "%g,%g", x, y)
		}
		fmt.Fprintf(&sb, `" fill="%s" stroke="black" stroke-width="1"/>`+"\n", fill)
	}
	// River.
	river, _ := s.Lr.Polyline(1)
	sb.WriteString(`<polyline points="`)
	for i, p := range river {
		if i > 0 {
			sb.WriteByte(' ')
		}
		x, y := tx(p)
		fmt.Fprintf(&sb, "%g,%g", x, y)
	}
	sb.WriteString(`" fill="none" stroke="#3b6fd4" stroke-width="4"/>` + "\n")
	// Trajectories.
	colors := []string{"#d43b3b", "#3bd46f", "#d4a23b", "#8f3bd4", "#3bcdd4", "#d43b9e"}
	for _, oid := range s.FMbus.Objects() {
		tps := s.FMbus.ObjectTuples(oid)
		color := colors[int(oid-1)%len(colors)]
		sb.WriteString(`<polyline points="`)
		for i, tp := range tps {
			if i > 0 {
				sb.WriteByte(' ')
			}
			x, y := tx(tp.Point())
			fmt.Fprintf(&sb, "%g,%g", x, y)
		}
		fmt.Fprintf(&sb, `" fill="none" stroke="%s" stroke-width="2" stroke-dasharray="4 2"/>`+"\n", color)
		for _, tp := range tps {
			x, y := tx(tp.Point())
			fmt.Fprintf(&sb, `<circle cx="%g" cy="%g" r="4" fill="%s"/>`+"\n", x, y, color)
		}
		if len(tps) > 0 {
			x, y := tx(tps[0].Point())
			fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="14">O%d</text>`+"\n", x+6, y-6, oid)
		}
	}
	// Schools and stores.
	for _, id := range s.Ls.IDs(layer.KindNode) {
		p, _ := s.Ls.Node(id)
		x, y := tx(p)
		fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="8" height="8" fill="#222"/>`+"\n", x-4, y-4)
	}
	for _, id := range s.Lstores.IDs(layer.KindNode) {
		p, _ := s.Lstores.Node(id)
		x, y := tx(p)
		fmt.Fprintf(&sb, `<circle cx="%g" cy="%g" r="5" fill="none" stroke="#222" stroke-width="2"/>`+"\n", x, y)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
