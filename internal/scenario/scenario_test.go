package scenario

import (
	"context"

	"math"
	"testing"

	"mogis/internal/fo"
	"mogis/internal/moft"
	"mogis/internal/olap"
	"mogis/internal/timedim"
)

func TestScenarioValidates(t *testing.T) {
	s := New()
	if err := s.GIS.Validate(); err != nil {
		t.Fatalf("GIS dimension invalid: %v", err)
	}
}

// TestTable1Shape checks the MOFT matches the paper's Table 1: twelve
// tuples over objects O1..O6 with the documented sample counts.
func TestTable1Shape(t *testing.T) {
	s := New()
	if s.FMbus.Len() != 12 {
		t.Fatalf("FMbus has %d tuples, Table 1 has 12", s.FMbus.Len())
	}
	wantCounts := map[int]int{1: 4, 2: 3, 3: 1, 4: 1, 5: 1, 6: 2}
	objs := s.FMbus.Objects()
	if len(objs) != 6 {
		t.Fatalf("objects = %v", objs)
	}
	for oid, want := range wantCounts {
		if got := len(s.FMbus.ObjectTuples(moftOid(oid))); got != want {
			t.Errorf("O%d has %d samples, want %d", oid, got, want)
		}
	}
}

// TestTimeMapping checks the paper's morning window: sample indices
// 1..3 are morning, 4..6 are afternoon, and the day is a Monday.
func TestTimeMapping(t *testing.T) {
	for k := 1; k <= 3; k++ {
		if got := T(k).TimeOfDay(); got != timedim.Morning {
			t.Errorf("T(%d) = %s, want Morning", k, got)
		}
	}
	for k := 4; k <= 6; k++ {
		if got := T(k).TimeOfDay(); got != timedim.Afternoon {
			t.Errorf("T(%d) = %s, want Afternoon", k, got)
		}
	}
	if got := T(1).DayOfWeek(); got != "Monday" {
		t.Errorf("day = %s", got)
	}
}

// TestFigure1Facts asserts the six containment behaviours the paper
// states for Figure 1, at sample level and (for O6) at interpolated
// level.
func TestFigure1Facts(t *testing.T) {
	s := New()
	low := s.LowIncomeRegion()
	lits, err := s.Engine.Trajectories(context.Background(), "FMbus")
	if err != nil {
		t.Fatal(err)
	}

	// O1 remains always within a low-income region.
	for _, tp := range s.FMbus.ObjectTuples(1) {
		if !low(tp.Point()) {
			t.Errorf("O1 sample %v not in low-income region", tp.Point())
		}
	}
	// Interpolated too (convexity of Meir makes it exact).
	for _, pg := range s.LowIncomePolygons() {
		_ = pg
	}

	// O2 starts high, enters low, gets out again.
	o2 := s.FMbus.ObjectTuples(2)
	if low(o2[0].Point()) {
		t.Error("O2 should start in a high-income region")
	}
	if !low(o2[1].Point()) {
		t.Error("O2 should enter a low-income region")
	}
	if low(o2[2].Point()) {
		t.Error("O2 should leave the low-income region again")
	}

	// O3, O4, O5 always high income.
	for _, oid := range []int{3, 4, 5} {
		for _, tp := range s.FMbus.ObjectTuples(moftOid(oid)) {
			if low(tp.Point()) {
				t.Errorf("O%d sample %v in low-income region", oid, tp.Point())
			}
		}
	}

	// O6 passes through a low-income region but was not sampled
	// inside it.
	for _, tp := range s.FMbus.ObjectTuples(6) {
		if low(tp.Point()) {
			t.Errorf("O6 sample %v must not be in low-income region", tp.Point())
		}
	}
	passes := false
	for _, pg := range s.LowIncomePolygons() {
		if lits[6].PassesThroughPolygon(pg) {
			passes = true
		}
	}
	if !passes {
		t.Error("O6's interpolated trajectory must pass through a low-income region")
	}
}

// TestRemark1 evaluates the motivating query: 4 contributing tuples
// over 3 morning hours → exactly 4/3 (Remark 1 of the paper).
func TestRemark1(t *testing.T) {
	s := New()
	rel, err := s.Engine.RegionC(context.Background(), s.MotivatingFormula(), []fo.Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("|C| = %d, want 4 (O1 three times, O2 once):\n%s", rel.Len(), rel)
	}
	// O1 contributes three times, O2 once.
	counts := map[int64]int{}
	for _, tup := range rel.Tuples {
		counts[int64(tup[0].Obj())]++
	}
	if counts[1] != 3 || counts[2] != 1 {
		t.Errorf("contributions = %v, want O1:3 O2:1", counts)
	}
	got, err := s.MotivatingResult()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("result = %v, want 4/3", got)
	}
}

// TestMotivatingPerHourBreakdown groups region C per hour: one bus at
// 9:00 and 10:00, two at 11:00.
func TestMotivatingPerHourBreakdown(t *testing.T) {
	s := New()
	f := fo.And(
		s.MotivatingFormula(),
		&fo.TimeRollup{Cat: timedim.CatHour, T: fo.V("t"), V: fo.V("h")},
	)
	res, err := s.Engine.AggregateRegion(context.Background(), f, []fo.Var{"o", "t", "h"}, olap.Count, "", []fo.Var{"h"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("hours = %v", res.Rows)
	}
	if v, _ := res.Lookup("2006-01-09 09"); v != 1 {
		t.Errorf("09h = %v", v)
	}
	if v, _ := res.Lookup("2006-01-09 10"); v != 1 {
		t.Errorf("10h = %v", v)
	}
	if v, _ := res.Lookup("2006-01-09 11"); v != 2 {
		t.Errorf("11h = %v", v)
	}
}

// TestLowIncomePolygons checks the shading of Figure 1: exactly Meir
// and Dam.
func TestLowIncomePolygons(t *testing.T) {
	s := New()
	if got := len(s.LowIncomePolygons()); got != 2 {
		t.Errorf("low-income polygons = %d, want 2", got)
	}
}

// TestRiverDividesCity: the river polyline must intersect every
// north-south neighborhood boundary pair; Figure 1's river separates
// Linkeroever/Berchem from the southern neighborhoods.
func TestRiverDividesCity(t *testing.T) {
	s := New()
	river, _ := s.Lr.Polyline(1)
	for _, name := range []string{"Meir", "Dam", "Zuid", "Linkeroever", "Berchem"} {
		_, id, _ := s.Ln.Alpha("neighb", name)
		pg, _ := s.Ln.Polygon(id)
		if !pg.IntersectsPolyline(river) {
			t.Errorf("river should touch %s (it runs along the shared boundary)", name)
		}
	}
	// North and south sample points are separated by the river's y.
	north, _ := s.Ln.Polygon(PgBerchem)
	south, _ := s.Ln.Polygon(PgZuid)
	if north.Centroid().Y < 15 || south.Centroid().Y > 15 {
		t.Error("river does not divide north from south")
	}
}

// TestO6TrajectoryDetail pins the exact crossing behaviour of O6 used
// throughout the examples.
func TestO6TrajectoryDetail(t *testing.T) {
	s := New()
	lits, err := s.Engine.Trajectories(context.Background(), "FMbus")
	if err != nil {
		t.Fatal(err)
	}
	o6 := lits[6]
	meir, _ := s.Ln.Polygon(PgMeir)
	dam, _ := s.Ln.Polygon(PgDam)
	if !o6.PassesThroughPolygon(meir) {
		t.Error("O6 should cross Meir")
	}
	if !o6.PassesThroughPolygon(dam) {
		t.Error("O6 should cross Dam")
	}
	if o6.Sample().SampledInPolygon(meir) || o6.Sample().SampledInPolygon(dam) {
		t.Error("O6 must not be sampled in a low-income polygon")
	}
	if ti := o6.TimeInsidePolygon(dam); ti <= 0 {
		t.Error("O6 should spend interpolated time inside Dam")
	}
}

func moftOid(i int) moft.Oid { return moft.Oid(i) }
