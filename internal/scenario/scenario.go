// Package scenario materializes the paper's running example: the
// Antwerp-style city of Figure 1 (five neighborhoods, two of them
// low-income, a river splitting the city, schools and stores), the
// GIS dimension schema of Figure 2, and the moving-object fact table
// FMbus of Table 1 with the six buses O1..O6 whose behaviour the
// paper describes:
//
//   - O1 remains always within a low-income region,
//   - O2 starts in a high-income region, enters a low-income
//     neighborhood, and gets out of it again,
//   - O3, O4 and O5 are always in high-income neighborhoods,
//   - O6 passes through a low-income region but was not sampled
//     inside it.
//
// Sample index k of Table 1 maps to Monday 2006-01-09 at hour 8+k, so
// the morning instants are exactly k ∈ {1, 2, 3} and the motivating
// query of Section 1.2 evaluates to 4/3 as in Remark 1.
package scenario

import (
	"context"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/olap"
	"mogis/internal/timedim"
)

// Neighborhood ids in layer Ln.
const (
	PgMeir        layer.Gid = 1 // low income (1200)
	PgDam         layer.Gid = 2 // low income (1400)
	PgZuid        layer.Gid = 3 // high income (2500)
	PgLinkeroever layer.Gid = 4 // high income (1800)
	PgBerchem     layer.Gid = 5 // high income (2200)
)

// LowIncomeThreshold is the euro threshold of the motivating query.
const LowIncomeThreshold = 1500

// Scenario is the fully built running example.
type Scenario struct {
	GIS    *gis.Dimension
	Ctx    *fo.Context
	Engine *core.Engine

	FMbus *moft.Table

	Neighborhoods *olap.Dimension

	// Layer handles.
	Ln      *layer.Layer // neighborhoods (polygons)
	Lr      *layer.Layer // river (polyline)
	Ls      *layer.Layer // schools (nodes)
	Lstores *layer.Layer // stores (nodes)
	Lh      *layer.Layer // highways/streets (polylines)
	Lbox    *layer.Layer // bounding box (polygon)
}

// T maps the abstract sample index k of Table 1 (1..6) to a concrete
// instant: Monday 2006-01-09 at hour 8+k.
func T(k int) timedim.Instant { return timedim.At(2006, 1, 9, 8+k, 0) }

// MorningHours is the number of morning hours covered by Table 1
// (k = 1, 2, 3 → 09:00, 10:00, 11:00); Remark 1 divides by this span.
const MorningHours = 3

func rect(x0, y0, x1, y1 float64) geom.Polygon {
	return geom.Polygon{Shell: geom.Ring{
		geom.Pt(x0, y0), geom.Pt(x1, y0), geom.Pt(x1, y1), geom.Pt(x0, y1),
	}}
}

// New builds the running example.
func New() *Scenario {
	s := &Scenario{}

	// --- Figure 2: the GIS dimension schema -------------------------
	hn := gis.NewHierarchy("Ln").
		AddEdge(layer.KindPoint, layer.KindPolygon).
		AddEdge(layer.KindPolygon, layer.KindAll)
	hr := gis.NewHierarchy("Lr").
		AddEdge(layer.KindPoint, layer.KindLine).
		AddEdge(layer.KindLine, layer.KindPolyline).
		AddEdge(layer.KindPolyline, layer.KindAll)
	hs := gis.NewHierarchy("Ls").
		AddEdge(layer.KindPoint, layer.KindNode).
		AddEdge(layer.KindNode, layer.KindAll)
	hstores := gis.NewHierarchy("Lstores").
		AddEdge(layer.KindPoint, layer.KindNode).
		AddEdge(layer.KindNode, layer.KindAll)
	hh := gis.NewHierarchy("Lh").
		AddEdge(layer.KindPoint, layer.KindLine).
		AddEdge(layer.KindLine, layer.KindPolyline).
		AddEdge(layer.KindPolyline, layer.KindAll)
	hbox := gis.NewHierarchy("Lbox").
		AddEdge(layer.KindPoint, layer.KindPolygon).
		AddEdge(layer.KindPolygon, layer.KindAll)

	appSchema := olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city")
	riverSchema := olap.NewSchema("Rivers").AddEdge("river", "basin")

	schema := gis.NewSchema().
		AddHierarchy(hn).AddHierarchy(hr).AddHierarchy(hs).
		AddHierarchy(hstores).AddHierarchy(hh).AddHierarchy(hbox).
		BindAttr("neighb", layer.KindPolygon, "Ln").
		BindAttr("river", layer.KindPolyline, "Lr").
		BindAttr("school", layer.KindNode, "Ls").
		BindAttr("store", layer.KindNode, "Lstores").
		BindAttr("street", layer.KindPolyline, "Lh").
		AddAppSchema(appSchema).AddAppSchema(riverSchema)

	// --- Figure 1: the city ------------------------------------------
	// City box [0,40]×[0,30]; the river runs along y=15 and divides
	// north from south. South: Meir, Dam (low income) and Zuid; north:
	// Linkeroever and Berchem.
	s.Ln = layer.New("Ln")
	s.Ln.AddPolygon(PgMeir, rect(0, 0, 10, 15))
	s.Ln.AddPolygon(PgDam, rect(10, 0, 20, 15))
	s.Ln.AddPolygon(PgZuid, rect(20, 0, 40, 15))
	s.Ln.AddPolygon(PgLinkeroever, rect(0, 15, 20, 30))
	s.Ln.AddPolygon(PgBerchem, rect(20, 15, 40, 30))
	s.Ln.SetAlpha("neighb", layer.KindPolygon, "Meir", PgMeir)
	s.Ln.SetAlpha("neighb", layer.KindPolygon, "Dam", PgDam)
	s.Ln.SetAlpha("neighb", layer.KindPolygon, "Zuid", PgZuid)
	s.Ln.SetAlpha("neighb", layer.KindPolygon, "Linkeroever", PgLinkeroever)
	s.Ln.SetAlpha("neighb", layer.KindPolygon, "Berchem", PgBerchem)

	s.Lr = layer.New("Lr")
	s.Lr.AddPolyline(1, geom.Polyline{geom.Pt(0, 15), geom.Pt(40, 15)})
	s.Lr.SetAlpha("river", layer.KindPolyline, "Scheldt", 1)

	s.Ls = layer.New("Ls")
	s.Ls.AddNode(1, geom.Pt(5, 10))  // school in Meir
	s.Ls.AddNode(2, geom.Pt(30, 25)) // school in Berchem
	s.Ls.SetAlpha("school", layer.KindNode, "MeirSchool", 1)
	s.Ls.SetAlpha("school", layer.KindNode, "BerchemSchool", 2)

	s.Lstores = layer.New("Lstores")
	s.Lstores.AddNode(1, geom.Pt(15, 5))  // store in Dam
	s.Lstores.AddNode(2, geom.Pt(25, 20)) // store in Berchem
	s.Lstores.SetAlpha("store", layer.KindNode, "DamStore", 1)
	s.Lstores.SetAlpha("store", layer.KindNode, "BerchemStore", 2)

	s.Lh = layer.New("Lh")
	s.Lh.AddPolyline(1, geom.Polyline{geom.Pt(0, 8), geom.Pt(40, 8)})   // east-west street
	s.Lh.AddPolyline(2, geom.Polyline{geom.Pt(22, 0), geom.Pt(22, 30)}) // north-south street
	s.Lh.SetAlpha("street", layer.KindPolyline, "Meirstraat", 1)
	s.Lh.SetAlpha("street", layer.KindPolyline, "Leien", 2)

	s.Lbox = layer.New("Lbox")
	s.Lbox.AddPolygon(1, rect(0, 0, 40, 30))

	// --- Application part --------------------------------------------
	s.Neighborhoods = olap.NewDimension(appSchema)
	for _, nb := range []struct {
		name   olap.Member
		income float64
		pop    float64
	}{
		{"Meir", 1200, 60000},
		{"Dam", 1400, 45000},
		{"Zuid", 2500, 30000},
		{"Linkeroever", 1800, 25000},
		{"Berchem", 2200, 40000},
	} {
		s.Neighborhoods.SetRollup("neighborhood", nb.name, "city", "Antwerp")
		s.Neighborhoods.SetAttr("neighborhood", nb.name, "income", olap.Num(nb.income))
		s.Neighborhoods.SetAttr("neighborhood", nb.name, "population", olap.Num(nb.pop))
	}

	riverDim := olap.NewDimension(riverSchema)
	riverDim.SetRollup("river", "Scheldt", "basin", "Scheldt Basin")

	d := gis.NewDimension(schema)
	d.MustAddLayer(s.Ln)
	d.MustAddLayer(s.Lr)
	d.MustAddLayer(s.Ls)
	d.MustAddLayer(s.Lstores)
	d.MustAddLayer(s.Lh)
	d.MustAddLayer(s.Lbox)
	d.MustAddAppDimension(s.Neighborhoods)
	d.MustAddAppDimension(riverDim)
	s.GIS = d

	// --- Table 1: FMbus ----------------------------------------------
	// Positions realize the six Figure-1 behaviours.
	s.FMbus = moft.New("FMbus")
	// O1: always in Meir (low income).
	s.FMbus.Add(1, T(1), 2, 2)
	s.FMbus.Add(1, T(2), 4, 4)
	s.FMbus.Add(1, T(3), 6, 6)
	s.FMbus.Add(1, T(4), 8, 8)
	// O2: Zuid (high) → Dam (low) → Zuid (high).
	s.FMbus.Add(2, T(2), 25, 5)
	s.FMbus.Add(2, T(3), 15, 5)
	s.FMbus.Add(2, T(4), 25, 8)
	// O3, O4, O5: always high income.
	s.FMbus.Add(3, T(5), 25, 25) // Berchem
	s.FMbus.Add(4, T(6), 35, 20) // Berchem
	s.FMbus.Add(5, T(3), 30, 20) // Berchem
	// O6: Linkeroever (high) → Zuid (high), crossing Meir and Dam
	// (low) in between without a sample there.
	s.FMbus.Add(6, T(2), 5, 17)
	s.FMbus.Add(6, T(3), 25, 5)

	ctx := fo.NewContext(d)
	ctx.AddTable(s.FMbus)
	ctx.BindConcept("neighb", s.Neighborhoods, "neighborhood")
	s.Ctx = ctx
	s.Engine = core.New(ctx)
	return s
}

// MotivatingFormula is the paper's Section 3.1 region C for "number
// of buses per hour in the morning in the Antwerp neighborhoods with
// a monthly income of less than 1500 euro":
//
//	C = {(Oid,t) | ∃x ∃y ∃pg ∃n. n ∈ neighb ∧
//	     R^timeOfDay_timeId(t) = "Morning" ∧ FMbus(Oid,t,x,y) ∧
//	     r^{Pt,Pg}_Ln(x,y,pg) ∧ α^{neighb,Pg}_Ln(n) = pg ∧
//	     n.income < 1500}
func (s *Scenario) MotivatingFormula() fo.Formula {
	return fo.Exists([]fo.Var{"x", "y", "pg", "n"}, fo.And(
		&fo.MemberOf{Concept: "neighb", M: fo.V("n")},
		&fo.TimeRollup{Cat: timedim.CatTimeOfDay, T: fo.V("t"), V: fo.CStr(timedim.Morning)},
		&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
		&fo.Alpha{Attr: "neighb", A: fo.V("n"), G: fo.V("pg")},
		&fo.AttrCmp{Concept: "neighb", M: fo.V("n"), Attr: "income", Op: fo.LT, Rhs: fo.CReal(LowIncomeThreshold)},
	))
}

// MotivatingResult evaluates the motivating query end to end: |C|
// divided by the morning time span. Remark 1: 4/3.
func (s *Scenario) MotivatingResult() (float64, error) {
	n, err := s.Engine.CountRegion(context.Background(), s.MotivatingFormula(), []fo.Var{"o", "t"})
	if err != nil {
		return 0, err
	}
	return core.RatePerHour(n, MorningHours), nil
}

// LowIncomePolygons returns the neighborhood polygons with income
// below the threshold (the shaded regions of Figure 1).
func (s *Scenario) LowIncomePolygons() []geom.Polygon {
	var out []geom.Polygon
	for _, m := range s.Neighborhoods.Members("neighborhood") {
		v, ok := s.Neighborhoods.Attr("neighborhood", m, "income")
		if !ok {
			continue
		}
		if inc, _ := v.Num(); inc < LowIncomeThreshold {
			_, id, _ := s.Ln.Alpha("neighb", string(m))
			if pg, ok := s.Ln.Polygon(id); ok {
				out = append(out, pg)
			}
		}
	}
	return out
}

// LowIncomeRegion returns the union of low-income polygons as a
// single region test.
func (s *Scenario) LowIncomeRegion() func(geom.Point) bool {
	pgs := s.LowIncomePolygons()
	return func(p geom.Point) bool {
		for _, pg := range pgs {
			if pg.ContainsPoint(p) {
				return true
			}
		}
		return false
	}
}
