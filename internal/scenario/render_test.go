package scenario

import (
	"strings"
	"testing"
)

func TestRenderASCII(t *testing.T) {
	s := New()
	out := s.RenderASCII(80)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	// Low-income shading, river, samples and legend must appear.
	for _, want := range []string{".", "~", "1", "6", "objects:", "O1:", "O6:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// The legend names the neighborhoods the buses were sampled in.
	if !strings.Contains(out, "Meir") {
		t.Error("legend missing Meir")
	}
	// A tiny width clamps to the default.
	out2 := s.RenderASCII(5)
	if len(out2) < len(out)/2 {
		t.Error("clamped width produced a degenerate render")
	}
}

func TestRenderSVG(t *testing.T) {
	s := New()
	svg := s.RenderSVG()
	for _, want := range []string{
		"<svg", "</svg>", "<polygon", "<polyline", "<circle", "O1", "O6",
		`fill="#c9c9c9"`, // low-income shading
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Five neighborhood polygons, each on its own line.
	if got := strings.Count(svg, "<polygon"); got != 5 {
		t.Errorf("polygon count = %d, want 5", got)
	}
	// Six trajectories (one dashed polyline each) plus the river.
	if got := strings.Count(svg, "<polyline"); got != 7 {
		t.Errorf("polyline count = %d, want 7", got)
	}
}
