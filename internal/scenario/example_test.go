package scenario_test

import (
	"context"

	"fmt"
	"log"

	"mogis/internal/fo"
	"mogis/internal/scenario"
)

// The paper's motivating query end to end: build the running example
// and evaluate "number of buses per hour in the morning in the
// Antwerp neighborhoods with a monthly income of less than 1500
// euro" — Remark 1's 4/3.
func Example() {
	s := scenario.New()
	rel, err := s.Engine.RegionC(context.Background(), s.MotivatingFormula(), []fo.Var{"o", "t"})
	if err != nil {
		log.Fatal(err)
	}
	rate, err := s.MotivatingResult()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|C| = %d tuples\n", rel.Len())
	fmt.Printf("buses per hour = %.4f\n", rate)
	// Output:
	// |C| = 4 tuples
	// buses per hour = 1.3333
}
