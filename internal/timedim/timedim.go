// Package timedim implements the paper's Time dimension (Section 3):
// time instants at the finest granularity (timeId) with rollup
// functions R^j_timeId to the categories minute, hour, hourOfDay, day,
// month, year, dayOfWeek, timeOfDay and typeOfDay. Calendar
// arithmetic is implemented from first principles (proleptic
// Gregorian, no time zones), so instants are pure integers and every
// rollup is a deterministic function, as the model requires.
package timedim

import (
	"fmt"
	"strconv"
	"strings"
)

// Instant is a time instant: seconds since 1970-01-01 00:00:00 in the
// simulation's single implicit time zone. It is the member domain of
// the paper's finest time category, timeId.
type Instant int64

// Seconds per calendar unit.
const (
	SecondsPerMinute = 60
	SecondsPerHour   = 3600
	SecondsPerDay    = 86400
)

// Civil is a broken-down calendar time.
type Civil struct {
	Year   int
	Month  int // 1..12
	Day    int // 1..31
	Hour   int // 0..23
	Minute int // 0..59
	Second int // 0..59
}

// daysFromCivil converts a Gregorian date to days since 1970-01-01
// (Howard Hinnant's algorithm).
func daysFromCivil(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = int64(y) / 400
	} else {
		era = (int64(y) - 399) / 400
	}
	yoe := int64(y) - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// civilFromDays converts days since 1970-01-01 to a Gregorian date.
func civilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	y = int(yy)
	if m <= 2 {
		y++
	}
	return y, m, d
}

// FromCivil builds an instant from calendar components.
func FromCivil(c Civil) Instant {
	days := daysFromCivil(c.Year, c.Month, c.Day)
	return Instant(days*SecondsPerDay + int64(c.Hour)*SecondsPerHour +
		int64(c.Minute)*SecondsPerMinute + int64(c.Second))
}

// Date is shorthand for FromCivil at midnight.
func Date(year, month, day int) Instant {
	return FromCivil(Civil{Year: year, Month: month, Day: day})
}

// At is shorthand for FromCivil with a clock time.
func At(year, month, day, hour, minute int) Instant {
	return FromCivil(Civil{Year: year, Month: month, Day: day, Hour: hour, Minute: minute})
}

// Civil breaks the instant into calendar components.
func (t Instant) Civil() Civil {
	days, secs := floorDiv(int64(t), SecondsPerDay)
	y, m, d := civilFromDays(days)
	return Civil{
		Year:   y,
		Month:  m,
		Day:    d,
		Hour:   int(secs / SecondsPerHour),
		Minute: int(secs % SecondsPerHour / SecondsPerMinute),
		Second: int(secs % SecondsPerMinute),
	}
}

func floorDiv(a, b int64) (q, r int64) {
	q = a / b
	r = a % b
	if r < 0 {
		q--
		r += b
	}
	return q, r
}

// Weekday names, Monday-first as the paper's examples use weekdays.
var weekdayNames = [7]string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}

// DayOfWeek returns the weekday name (1970-01-01 was a Thursday).
func (t Instant) DayOfWeek() string {
	days, _ := floorDiv(int64(t), SecondsPerDay)
	// 1970-01-01 is Thursday = index 3 (Monday-first).
	idx := (days%7 + 7 + 3) % 7
	return weekdayNames[idx]
}

// Time-of-day category members.
const (
	Morning   = "Morning"   // [06:00, 12:00)
	Afternoon = "Afternoon" // [12:00, 18:00)
	Evening   = "Evening"   // [18:00, 22:00)
	Night     = "Night"     // [22:00, 06:00)
)

// TimeOfDay returns the paper's timeOfDay category member for t.
func (t Instant) TimeOfDay() string {
	switch h := t.Civil().Hour; {
	case h >= 6 && h < 12:
		return Morning
	case h >= 12 && h < 18:
		return Afternoon
	case h >= 18 && h < 22:
		return Evening
	default:
		return Night
	}
}

// Type-of-day category members.
const (
	Weekday = "Weekday"
	Weekend = "Weekend"
)

// TypeOfDay returns Weekday or Weekend.
func (t Instant) TypeOfDay() string {
	switch t.DayOfWeek() {
	case "Saturday", "Sunday":
		return Weekend
	default:
		return Weekday
	}
}

// HourOfDay returns the clock hour 0..23.
func (t Instant) HourOfDay() int { return t.Civil().Hour }

// TruncateHour returns the instant at the start of t's hour.
func (t Instant) TruncateHour() Instant {
	q, _ := floorDiv(int64(t), SecondsPerHour)
	return Instant(q * SecondsPerHour)
}

// TruncateDay returns the instant at the start of t's day.
func (t Instant) TruncateDay() Instant {
	q, _ := floorDiv(int64(t), SecondsPerDay)
	return Instant(q * SecondsPerDay)
}

// String formats the instant as "YYYY-MM-DD HH:MM" (":SS" appended
// when nonzero), matching the literals in the paper's queries such as
// "2006-01-07 9:15".
func (t Instant) String() string {
	c := t.Civil()
	if c.Second == 0 {
		return fmt.Sprintf("%04d-%02d-%02d %02d:%02d", c.Year, c.Month, c.Day, c.Hour, c.Minute)
	}
	return fmt.Sprintf("%04d-%02d-%02d %02d:%02d:%02d", c.Year, c.Month, c.Day, c.Hour, c.Minute, c.Second)
}

// DateString formats just the date part, "YYYY-MM-DD".
func (t Instant) DateString() string {
	c := t.Civil()
	return fmt.Sprintf("%04d-%02d-%02d", c.Year, c.Month, c.Day)
}

// Parse reads "YYYY-MM-DD", "YYYY-MM-DD HH:MM" or
// "YYYY-MM-DD HH:MM:SS".
func Parse(s string) (Instant, error) {
	s = strings.TrimSpace(s)
	datePart := s
	clockPart := ""
	if i := strings.IndexByte(s, ' '); i >= 0 {
		datePart, clockPart = s[:i], strings.TrimSpace(s[i+1:])
	}
	dfs := strings.Split(datePart, "-")
	if len(dfs) != 3 {
		return 0, fmt.Errorf("timedim: malformed date %q", s)
	}
	var c Civil
	var err error
	if c.Year, err = strconv.Atoi(dfs[0]); err != nil {
		return 0, fmt.Errorf("timedim: bad year in %q: %w", s, err)
	}
	if c.Month, err = strconv.Atoi(dfs[1]); err != nil || c.Month < 1 || c.Month > 12 {
		return 0, fmt.Errorf("timedim: bad month in %q", s)
	}
	if c.Day, err = strconv.Atoi(dfs[2]); err != nil || c.Day < 1 || c.Day > 31 {
		return 0, fmt.Errorf("timedim: bad day in %q", s)
	}
	if clockPart != "" {
		cfs := strings.Split(clockPart, ":")
		if len(cfs) < 2 || len(cfs) > 3 {
			return 0, fmt.Errorf("timedim: malformed clock in %q", s)
		}
		if c.Hour, err = strconv.Atoi(cfs[0]); err != nil || c.Hour < 0 || c.Hour > 23 {
			return 0, fmt.Errorf("timedim: bad hour in %q", s)
		}
		if c.Minute, err = strconv.Atoi(cfs[1]); err != nil || c.Minute < 0 || c.Minute > 59 {
			return 0, fmt.Errorf("timedim: bad minute in %q", s)
		}
		if len(cfs) == 3 {
			if c.Second, err = strconv.Atoi(cfs[2]); err != nil || c.Second < 0 || c.Second > 59 {
				return 0, fmt.Errorf("timedim: bad second in %q", s)
			}
		}
	}
	return FromCivil(c), nil
}
