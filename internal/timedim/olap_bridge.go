package timedim

import (
	"strconv"

	"mogis/internal/olap"
)

// OLAPSchema returns the Time dimension as an OLAP dimension schema,
// the configuration Figure 2 of the paper draws alongside the GIS
// dimensions: timeId rolls up to minute → hour → day → month → year
// and, in parallel, to the categorical levels hourOfDay, dayOfWeek,
// timeOfDay and typeOfDay.
func OLAPSchema() *olap.Schema {
	return olap.NewSchema("Time").
		AddEdge(olap.Level(CatTimeID), olap.Level(CatMinute)).
		AddEdge(olap.Level(CatMinute), olap.Level(CatHour)).
		AddEdge(olap.Level(CatHour), olap.Level(CatDay)).
		AddEdge(olap.Level(CatDay), olap.Level(CatMonth)).
		AddEdge(olap.Level(CatMonth), olap.Level(CatYear)).
		AddEdge(olap.Level(CatHour), olap.Level(CatHourOfDay)).
		AddEdge(olap.Level(CatDay), olap.Level(CatDayOfWeek)).
		AddEdge(olap.Level(CatDayOfWeek), olap.Level(CatTypeOfDay)).
		AddEdge(olap.Level(CatHourOfDay), olap.Level(CatTimeOfDay))
}

// AsOLAPDimension materializes a finite OLAP dimension instance over
// the given instants: each instant becomes a timeId member and every
// schema edge gets its rollup mapping, so classical fact tables and
// cube materialization work over time exactly as over geometric
// dimensions.
func AsOLAPDimension(instants []Instant) (*olap.Dimension, error) {
	d := olap.NewDimension(OLAPSchema())
	for _, t := range instants {
		id := olap.Member(strconv.FormatInt(int64(t), 10))
		minute, _ := Rollup(CatMinute, t)
		hour, _ := Rollup(CatHour, t)
		day, _ := Rollup(CatDay, t)
		month, _ := Rollup(CatMonth, t)
		year, _ := Rollup(CatYear, t)
		hod, _ := Rollup(CatHourOfDay, t)
		dow, _ := Rollup(CatDayOfWeek, t)
		tod, _ := Rollup(CatTimeOfDay, t)
		typ, _ := Rollup(CatTypeOfDay, t)

		d.SetRollup(olap.Level(CatTimeID), id, olap.Level(CatMinute), olap.Member(minute))
		d.SetRollup(olap.Level(CatMinute), olap.Member(minute), olap.Level(CatHour), olap.Member(hour))
		d.SetRollup(olap.Level(CatHour), olap.Member(hour), olap.Level(CatDay), olap.Member(day))
		d.SetRollup(olap.Level(CatDay), olap.Member(day), olap.Level(CatMonth), olap.Member(month))
		d.SetRollup(olap.Level(CatMonth), olap.Member(month), olap.Level(CatYear), olap.Member(year))
		d.SetRollup(olap.Level(CatHour), olap.Member(hour), olap.Level(CatHourOfDay), olap.Member(hod))
		d.SetRollup(olap.Level(CatDay), olap.Member(day), olap.Level(CatDayOfWeek), olap.Member(dow))
		d.SetRollup(olap.Level(CatDayOfWeek), olap.Member(dow), olap.Level(CatTypeOfDay), olap.Member(typ))
		d.SetRollup(olap.Level(CatHourOfDay), olap.Member(hod), olap.Level(CatTimeOfDay), olap.Member(tod))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
