package timedim

import (
	"testing"
	"testing/quick"
)

func TestCivilRoundtrip(t *testing.T) {
	cases := []Civil{
		{1970, 1, 1, 0, 0, 0},
		{2006, 1, 7, 9, 15, 0}, // the paper's Q4 timestamp
		{2000, 2, 29, 12, 0, 0},
		{1999, 12, 31, 23, 59, 59},
		{2026, 7, 5, 6, 0, 0},
		{1960, 3, 1, 1, 2, 3}, // pre-epoch
		{2400, 2, 29, 0, 0, 0},
	}
	for _, c := range cases {
		got := FromCivil(c).Civil()
		if got != c {
			t.Errorf("roundtrip %+v -> %+v", c, got)
		}
	}
}

func TestEpochAndKnownDates(t *testing.T) {
	if Date(1970, 1, 1) != 0 {
		t.Errorf("epoch = %d", Date(1970, 1, 1))
	}
	// 2006-01-07 was a Saturday (the paper's Q4 uses "Jan 7th, 2006").
	if d := Date(2006, 1, 7).DayOfWeek(); d != "Saturday" {
		t.Errorf("2006-01-07 = %s", d)
	}
	if d := Date(1970, 1, 1).DayOfWeek(); d != "Thursday" {
		t.Errorf("epoch weekday = %s", d)
	}
	if d := Date(2026, 7, 5).DayOfWeek(); d != "Sunday" {
		t.Errorf("2026-07-05 = %s", d)
	}
	// Pre-epoch weekday.
	if d := Date(1969, 12, 31).DayOfWeek(); d != "Wednesday" {
		t.Errorf("1969-12-31 = %s", d)
	}
}

func TestLeapYears(t *testing.T) {
	// Feb 29 exists in 2000 and 2004, not in 1900 or 2100.
	if c := Date(2000, 2, 29).Civil(); c.Month != 2 || c.Day != 29 {
		t.Errorf("2000-02-29 = %+v", c)
	}
	// Day after Feb 28 in a non-leap century year.
	if got := (Date(1900, 2, 28) + SecondsPerDay).Civil(); got.Month != 3 || got.Day != 1 {
		t.Errorf("1900-02-28 +1d = %+v", got)
	}
	// Day after Feb 28 in a leap year.
	if got := (Date(2004, 2, 28) + SecondsPerDay).Civil(); got.Month != 2 || got.Day != 29 {
		t.Errorf("2004-02-28 +1d = %+v", got)
	}
}

func TestTimeOfDay(t *testing.T) {
	cases := []struct {
		hour int
		want string
	}{
		{0, Night}, {5, Night}, {6, Morning}, {11, Morning},
		{12, Afternoon}, {17, Afternoon}, {18, Evening}, {21, Evening},
		{22, Night}, {23, Night},
	}
	for _, c := range cases {
		ts := At(2006, 1, 9, c.hour, 30)
		if got := ts.TimeOfDay(); got != c.want {
			t.Errorf("hour %d: %s, want %s", c.hour, got, c.want)
		}
	}
}

func TestTypeOfDay(t *testing.T) {
	if got := Date(2006, 1, 9).TypeOfDay(); got != Weekday { // Monday
		t.Errorf("Monday = %s", got)
	}
	if got := Date(2006, 1, 7).TypeOfDay(); got != Weekend { // Saturday
		t.Errorf("Saturday = %s", got)
	}
	if got := Date(2006, 1, 8).TypeOfDay(); got != Weekend { // Sunday
		t.Errorf("Sunday = %s", got)
	}
}

func TestTruncate(t *testing.T) {
	ts := At(2006, 1, 7, 9, 15) + 42
	if h := ts.TruncateHour(); h != At(2006, 1, 7, 9, 0) {
		t.Errorf("TruncateHour = %v", h)
	}
	if d := ts.TruncateDay(); d != Date(2006, 1, 7) {
		t.Errorf("TruncateDay = %v", d)
	}
	// Pre-epoch truncation must floor, not round toward zero.
	pre := At(1969, 12, 31, 23, 30)
	if d := pre.TruncateDay(); d != Date(1969, 12, 31) {
		t.Errorf("pre-epoch TruncateDay = %v (%s)", d, d)
	}
}

func TestStringAndParse(t *testing.T) {
	ts := At(2006, 1, 7, 9, 15)
	if s := ts.String(); s != "2006-01-07 09:15" {
		t.Errorf("String = %q", s)
	}
	if s := (ts + 30).String(); s != "2006-01-07 09:15:30" {
		t.Errorf("String with seconds = %q", s)
	}
	if s := ts.DateString(); s != "2006-01-07" {
		t.Errorf("DateString = %q", s)
	}
	for _, in := range []string{"2006-01-07", "2006-01-07 09:15", "2006-01-07 09:15:30"} {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		var want Instant
		switch in {
		case "2006-01-07":
			want = Date(2006, 1, 7)
		case "2006-01-07 09:15":
			want = ts
		default:
			want = ts + 30
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "2006", "2006-13-01", "2006-01-32", "2006-01-07 25:00",
		"2006-01-07 09:61", "2006-01-07 09:15:99", "x-y-z", "2006-01-07 09", "2006-01-07 1:2:3:4"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestRollupCategories(t *testing.T) {
	ts := At(2006, 1, 9, 9, 15) // Monday morning
	cases := []struct {
		cat  Category
		want string
	}{
		{CatMinute, "2006-01-09 09:15"},
		{CatHour, "2006-01-09 09"},
		{CatHourOfDay, "9"},
		{CatDay, "2006-01-09"},
		{CatMonth, "2006-01"},
		{CatYear, "2006"},
		{CatDayOfWeek, "Monday"},
		{CatTimeOfDay, Morning},
		{CatTypeOfDay, Weekday},
		{CatAll, "all"},
	}
	for _, c := range cases {
		got, ok := Rollup(c.cat, ts)
		if !ok || got != c.want {
			t.Errorf("Rollup(%s) = %q,%v, want %q", c.cat, got, ok, c.want)
		}
	}
	if _, ok := Rollup("bogus", ts); ok {
		t.Error("bogus category should fail")
	}
	if got, _ := Rollup(CatTimeID, 42); got != "42" {
		t.Errorf("timeId = %q", got)
	}
	if len(Categories()) != 11 {
		t.Errorf("Categories = %d", len(Categories()))
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}
	if !iv.Contains(10) || !iv.Contains(20) || iv.Contains(21) {
		t.Error("Contains mismatch")
	}
	if iv.Duration() != 10 {
		t.Errorf("Duration = %d", iv.Duration())
	}
	if (Interval{Lo: 5, Hi: 4}).Duration() != 0 {
		t.Error("inverted Duration")
	}
	if !iv.Overlaps(Interval{Lo: 20, Hi: 30}) || iv.Overlaps(Interval{Lo: 21, Hi: 30}) {
		t.Error("Overlaps mismatch")
	}
	got, ok := iv.Intersect(Interval{Lo: 15, Hi: 40})
	if !ok || got.Lo != 15 || got.Hi != 20 {
		t.Errorf("Intersect = %+v,%v", got, ok)
	}
	if _, ok := iv.Intersect(Interval{Lo: 30, Hi: 40}); ok {
		t.Error("disjoint Intersect should fail")
	}
}

// Property: civil roundtrip holds for arbitrary instants within ±10k
// years, and day arithmetic advances the date monotonically.
func TestCivilRoundtripProperty(t *testing.T) {
	f := func(raw int64) bool {
		ts := Instant(raw % (10000 * 365 * SecondsPerDay))
		return FromCivil(ts.Civil()) == ts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	mono := func(raw int64) bool {
		ts := Instant(raw % (5000 * 365 * SecondsPerDay))
		return ts.TruncateDay()+SecondsPerDay == (ts + SecondsPerDay).TruncateDay()
	}
	if err := quick.Check(mono, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
