package timedim_test

import (
	"fmt"

	"mogis/internal/timedim"
)

// The Time dimension's rollup functions R^cat_timeId map an instant
// to its member of each category, exactly as the paper's queries use
// them.
func Example() {
	t := timedim.At(2006, 1, 9, 9, 15) // the paper's Monday morning
	for _, cat := range []timedim.Category{
		timedim.CatHour, timedim.CatDay, timedim.CatDayOfWeek,
		timedim.CatTimeOfDay, timedim.CatTypeOfDay,
	} {
		m, _ := timedim.Rollup(cat, t)
		fmt.Printf("%s -> %s\n", cat, m)
	}
	// Output:
	// hour -> 2006-01-09 09
	// day -> 2006-01-09
	// dayOfWeek -> Monday
	// timeOfDay -> Morning
	// typeOfDay -> Weekday
}

func ExampleParse() {
	t, _ := timedim.Parse("2006-01-07 09:15")
	fmt.Println(t.DayOfWeek(), t.TimeOfDay())
	// Output: Saturday Morning
}
