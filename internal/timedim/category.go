package timedim

import (
	"fmt"
	"strconv"
)

// Category names a level of the Time dimension. The finest level is
// CatTimeID; all others are reached via the rollup functions
// R^cat_timeId that the paper's queries use.
type Category string

// Time dimension categories.
const (
	CatTimeID    Category = "timeId"
	CatMinute    Category = "minute"    // absolute minute bucket
	CatHour      Category = "hour"      // absolute hour bucket "YYYY-MM-DD HH"
	CatHourOfDay Category = "hourOfDay" // clock hour "0".."23"
	CatDay       Category = "day"       // "YYYY-MM-DD"
	CatMonth     Category = "month"     // "YYYY-MM"
	CatYear      Category = "year"      // "YYYY"
	CatDayOfWeek Category = "dayOfWeek" // "Monday".."Sunday"
	CatTimeOfDay Category = "timeOfDay" // Morning/Afternoon/Evening/Night
	CatTypeOfDay Category = "typeOfDay" // Weekday/Weekend
	CatAll       Category = "All"
)

// Categories lists every category, finest first.
func Categories() []Category {
	return []Category{
		CatTimeID, CatMinute, CatHour, CatHourOfDay, CatDay, CatMonth,
		CatYear, CatDayOfWeek, CatTimeOfDay, CatTypeOfDay, CatAll,
	}
}

// Rollup is the rollup function R^cat_timeId: it maps instant t to its
// member of the category. Unknown categories return ok=false.
func Rollup(cat Category, t Instant) (string, bool) {
	c := t.Civil()
	switch cat {
	case CatTimeID:
		return strconv.FormatInt(int64(t), 10), true
	case CatMinute:
		return fmt.Sprintf("%04d-%02d-%02d %02d:%02d", c.Year, c.Month, c.Day, c.Hour, c.Minute), true
	case CatHour:
		return fmt.Sprintf("%04d-%02d-%02d %02d", c.Year, c.Month, c.Day, c.Hour), true
	case CatHourOfDay:
		return strconv.Itoa(c.Hour), true
	case CatDay:
		return t.DateString(), true
	case CatMonth:
		return fmt.Sprintf("%04d-%02d", c.Year, c.Month), true
	case CatYear:
		return fmt.Sprintf("%04d", c.Year), true
	case CatDayOfWeek:
		return t.DayOfWeek(), true
	case CatTimeOfDay:
		return t.TimeOfDay(), true
	case CatTypeOfDay:
		return t.TypeOfDay(), true
	case CatAll:
		return "all", true
	default:
		return "", false
	}
}

// Interval is a closed time interval [Lo, Hi].
type Interval struct {
	Lo, Hi Instant
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t Instant) bool { return iv.Lo <= t && t <= iv.Hi }

// Duration returns the interval length in seconds (0 when inverted).
func (iv Interval) Duration() int64 {
	if iv.Hi < iv.Lo {
		return 0
	}
	return int64(iv.Hi - iv.Lo)
}

// Overlaps reports whether two intervals share an instant.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// Intersect returns the common sub-interval; ok=false when disjoint.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}
