package timedim

import (
	"strconv"
	"testing"

	"mogis/internal/olap"
)

func TestOLAPSchemaShape(t *testing.T) {
	s := OLAPSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("schema invalid: %v", err)
	}
	paths := []struct {
		from, to Category
		want     bool
	}{
		{CatTimeID, CatYear, true},
		{CatTimeID, CatTimeOfDay, true},
		{CatTimeID, CatTypeOfDay, true},
		{CatHour, CatYear, true},
		{CatYear, CatTimeID, false},
		{CatTimeOfDay, CatYear, false},
	}
	for _, p := range paths {
		if got := s.PathExists(olap.Level(p.from), olap.Level(p.to)); got != p.want {
			t.Errorf("PathExists(%s,%s) = %v, want %v", p.from, p.to, got, p.want)
		}
	}
}

func TestAsOLAPDimension(t *testing.T) {
	instants := []Instant{
		At(2006, 1, 9, 9, 15), // Monday morning
		At(2006, 1, 9, 14, 0), // Monday afternoon
		At(2006, 1, 7, 9, 15), // Saturday morning
		At(2005, 12, 31, 23, 59),
	}
	d, err := AsOLAPDimension(instants)
	if err != nil {
		t.Fatal(err)
	}
	id := olap.Member(strconv.FormatInt(int64(instants[0]), 10))
	cases := []struct {
		to   Category
		want olap.Member
	}{
		{CatHour, "2006-01-09 09"},
		{CatDay, "2006-01-09"},
		{CatMonth, "2006-01"},
		{CatYear, "2006"},
		{CatDayOfWeek, "Monday"},
		{CatTimeOfDay, Morning},
		{CatTypeOfDay, Weekday},
	}
	for _, c := range cases {
		got, ok := d.Rollup(olap.Level(CatTimeID), olap.Level(c.to), id)
		if !ok || got != c.want {
			t.Errorf("Rollup to %s = %q,%v, want %q", c.to, got, ok, c.want)
		}
	}
	// The Saturday instant rolls to Weekend through two hops.
	satID := olap.Member(strconv.FormatInt(int64(instants[2]), 10))
	if got, ok := d.Rollup(olap.Level(CatTimeID), olap.Level(CatTypeOfDay), satID); !ok || got != Weekend {
		t.Errorf("Saturday typeOfDay = %q,%v", got, ok)
	}
}

// TestTimeFactTable exercises the full OLAP pipeline over time: a
// fact table at the timeId level rolled up per day and per timeOfDay.
func TestTimeFactTable(t *testing.T) {
	instants := []Instant{
		At(2006, 1, 9, 9, 0), At(2006, 1, 9, 10, 0),
		At(2006, 1, 9, 14, 0), At(2006, 1, 10, 9, 0),
	}
	d, err := AsOLAPDimension(instants)
	if err != nil {
		t.Fatal(err)
	}
	ft := olap.NewFactTable(olap.FactSchema{
		Dims:     []olap.DimCol{{Name: "when", Dimension: d, Level: olap.Level(CatTimeID)}},
		Measures: []string{"count"},
	})
	for _, ts := range instants {
		ft.MustAdd([]olap.Member{olap.Member(strconv.FormatInt(int64(ts), 10))}, []float64{1})
	}
	byDay, err := ft.RollupAggregate(olap.Sum, "count", []olap.GroupSpec{
		{DimName: "when", ToLevel: olap.Level(CatDay)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := byDay.Lookup("2006-01-09"); v != 3 {
		t.Errorf("day count = %v\n%v", v, byDay)
	}
	byTod, err := ft.RollupAggregate(olap.Sum, "count", []olap.GroupSpec{
		{DimName: "when", ToLevel: olap.Level(CatTimeOfDay)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := byTod.Lookup(Morning); v != 3 {
		t.Errorf("morning count = %v\n%v", v, byTod)
	}
}
