package core

import (
	"context"

	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/telemetry"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

// Querier is the engine surface shared by the unsharded Engine and
// the ShardedEngine coordinator: the 17 query entry points plus the
// configuration and cache-lifecycle knobs callers (pietql, the
// benchmarks, the experiments) need. The two implementations answer
// every query bit-identically — that identity is gated by the P12
// experiment and the sharded determinism tests.
type Querier interface {
	// Model context and configuration.
	Context() *fo.Context
	SetMetrics(*obs.Metrics)
	SetTelemetry(*telemetry.Collector)
	SetWorkers(int)
	SetIntervalCacheCap(int)
	SetAggGrid(int)
	SetGridVerify(bool)

	// Cache lifecycle.
	InvalidateTrajectories(table string)
	ResetCache()
	CacheStats() (tables, objects int)

	// Types 1–2: geometric and summable aggregation.
	GeometricAggregate(ctx context.Context, a gis.Aggregation) (float64, error)
	SummableOverIDs(ctx context.Context, ids []layer.Gid, ft *gis.FactTable, measure string) (float64, error)

	// Types 3–4: region C as a first-order formula.
	RegionC(ctx context.Context, f fo.Formula, out []fo.Var) (*fo.Relation, error)
	AggregateRegion(ctx context.Context, f fo.Formula, out []fo.Var, fn olap.AggFunc, measure fo.Var, groupBy []fo.Var) (*olap.AggResult, error)
	CountRegion(ctx context.Context, f fo.Formula, out []fo.Var) (int, error)

	// Type 5: second-order regions.
	FilterGeometriesByAggregate(ctx context.Context, layerName string, kind layer.Kind,
		inner func(layer.Gid) (float64, error), op fo.CmpOp, threshold float64) ([]layer.Gid, error)

	// Type 6: the trajectory as a static object at an instant.
	ObjectsSampledAt(ctx context.Context, table string, t timedim.Instant, pg geom.Polygon) ([]moft.Oid, error)
	ObjectsInterpolatedAt(ctx context.Context, table string, t timedim.Instant, pg geom.Polygon) ([]moft.Oid, error)

	// Type 7: trajectory queries under interpolation.
	Trajectories(ctx context.Context, table string) (map[moft.Oid]*traj.LIT, error)
	ObjectsPassingThrough(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) ([]moft.Oid, error)
	ObjectsSampledInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) ([]moft.Oid, error)
	CountSamplesInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (int, error)
	TimeSpentInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (map[moft.Oid]float64, error)
	ObjectsEverWithinRadius(ctx context.Context, table string, center geom.Point, r float64, iv timedim.Interval) (map[moft.Oid]float64, error)
	CountPassingThroughGeometries(ctx context.Context, table, layerName string, ids []layer.Gid, iv timedim.Interval) (int, error)
	ObjectsPossiblyPassingThrough(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval, speedFactor float64) (PossiblyResult, error)

	// Type 8: aggregation over one trajectory.
	TrajectoryAggregate(ctx context.Context, table string, oid moft.Oid) (TrajectoryStats, error)
}

var (
	_ Querier = (*Engine)(nil)
	_ Querier = (*ShardedEngine)(nil)
)
