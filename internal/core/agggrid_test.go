package core_test

import (
	"context"

	"testing"

	"mogis/internal/core"
	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/scenario"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// gridWorkload builds a generated-city engine with isolated metrics.
func gridWorkload(objects int) (*workload.City, *moft.Table, *core.Engine, *obs.Metrics) {
	city := workload.GenCity(workload.CityConfig{Seed: 42, Cols: 6, Rows: 6})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 42, Objects: objects, Samples: 60, Step: 60, Speed: 3,
	})
	_, eng := city.Context(fm)
	met := obs.NewMetrics(obs.NewRegistry())
	eng.SetMetrics(met)
	return city, fm, eng, met
}

// TestGridAcceleratedIdentity: every sample-query entry point returns
// the same answer with the grid enabled, disabled, and in verify
// mode, over the generated-city neighborhoods and several time
// windows.
func TestGridAcceleratedIdentity(t *testing.T) {
	city, fm, eng, met := gridWorkload(120)
	lo, hi, _ := fm.TimeSpan()
	windows := []timedim.Interval{
		{Lo: lo, Hi: hi},               // vacuous: pre-aggregates answer interior cells
		{Lo: lo + 600, Hi: hi - 600},   // partial
		{Lo: lo + 1200, Hi: lo + 1200}, // instant
		{Lo: hi + 1000, Hi: hi + 2000}, // empty
	}
	var polys []geom.Polygon
	for _, id := range city.LowIncomeIDs {
		pg, _ := city.Ln.Polygon(id)
		polys = append(polys, pg)
	}
	if len(polys) == 0 {
		t.Fatal("city has no low-income polygons")
	}

	for wi, w := range windows {
		for pi, pg := range polys {
			eng.SetAggGrid(-1)
			slowN, err := eng.CountSamplesInside(context.Background(), "FM", pg, w)
			if err != nil {
				t.Fatal(err)
			}
			slowO, err := eng.ObjectsSampledInside(context.Background(), "FM", pg, w)
			if err != nil {
				t.Fatal(err)
			}
			slowAt, err := eng.ObjectsSampledAt(context.Background(), "FM", w.Lo, pg)
			if err != nil {
				t.Fatal(err)
			}

			eng.SetAggGrid(0)
			fastN, err := eng.CountSamplesInside(context.Background(), "FM", pg, w)
			if err != nil {
				t.Fatal(err)
			}
			fastO, err := eng.ObjectsSampledInside(context.Background(), "FM", pg, w)
			if err != nil {
				t.Fatal(err)
			}
			fastAt, err := eng.ObjectsSampledAt(context.Background(), "FM", w.Lo, pg)
			if err != nil {
				t.Fatal(err)
			}

			if fastN != slowN {
				t.Errorf("window %d poly %d: CountSamplesInside grid=%d scan=%d", wi, pi, fastN, slowN)
			}
			if !eqOids(fastO, slowO) {
				t.Errorf("window %d poly %d: ObjectsSampledInside grid=%v scan=%v", wi, pi, fastO, slowO)
			}
			if !eqOids(fastAt, slowAt) {
				t.Errorf("window %d poly %d: ObjectsSampledAt grid=%v scan=%v", wi, pi, fastAt, slowAt)
			}
		}
	}
	if met.AggGridInteriorCells.Value() == 0 {
		t.Error("grid never aggregated an interior cell")
	}
	if met.AggGridBuilds.Value() != 1 {
		t.Errorf("grid built %d times, want 1 (single-flight)", met.AggGridBuilds.Value())
	}

	// Verify mode re-runs the slow path inside the engine; any
	// divergence would fire the mismatch counter.
	eng.SetGridVerify(true)
	for _, w := range windows {
		for _, pg := range polys {
			if _, err := eng.CountSamplesInside(context.Background(), "FM", pg, w); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.ObjectsSampledInside(context.Background(), "FM", pg, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := met.AggGridMismatches.Value(); n != 0 {
		t.Errorf("verify mode found %d grid/scan mismatches", n)
	}
}

// TestGridInvalidation: mutating the MOFT and invalidating rebuilds
// the grid, and fresh samples are visible.
func TestGridInvalidation(t *testing.T) {
	s := sc(t)
	berchem, _ := s.Ln.Polygon(scenario.PgBerchem)
	iv := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}
	before, err := s.Engine.CountSamplesInside(context.Background(), "FMbus", berchem, iv)
	if err != nil {
		t.Fatal(err)
	}
	// Drop a new object's sample in the middle of Berchem.
	c := berchem.Centroid()
	s.FMbus.Add(99, scenario.T(2), c.X, c.Y)
	s.Engine.InvalidateTrajectories("FMbus")
	after, err := s.Engine.CountSamplesInside(context.Background(), "FMbus", berchem, iv)
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Errorf("after invalidation: count %d, want %d", after, before+1)
	}
}

// TestGridUnknownTable: error behavior matches the scan path and a
// failed entry does not poison later queries.
func TestGridUnknownTable(t *testing.T) {
	s := sc(t)
	pg, _ := s.Ln.Polygon(scenario.PgMeir)
	iv := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}
	if _, err := s.Engine.CountSamplesInside(context.Background(), "FMnope", pg, iv); err == nil {
		t.Fatal("no error for unknown table")
	}
	if _, err := s.Engine.CountSamplesInside(context.Background(), "FMbus", pg, iv); err != nil {
		t.Fatalf("known table failed after unknown-table query: %v", err)
	}
}

// TestGridQueryAllocs is the allocation-regression gate for the
// engine's grid-accelerated polygon aggregate: per-query allocations
// stay bounded by a small constant once caches are warm.
func TestGridQueryAllocs(t *testing.T) {
	city, fm, eng, _ := gridWorkload(100)
	lo, hi, _ := fm.TimeSpan()
	iv := timedim.Interval{Lo: lo, Hi: hi}
	pg, _ := city.Ln.Polygon(city.LowIncomeIDs[0])
	if _, err := eng.CountSamplesInside(context.Background(), "FM", pg, iv); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := eng.CountSamplesInside(context.Background(), "FM", pg, iv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Errorf("CountSamplesInside allocates %.0f times per query; want <= 64 (per-sample allocation regression?)", allocs)
	}
}
