package core

import (
	"context"
	"fmt"
	"sort"

	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

// Uncertainty-aware query evaluation using the Hornsby–Egenhofer
// lifeline-bead model the paper cites in Section 2: between two
// observations the object may be anywhere reachable at its maximum
// speed, so "possibly passed through" is a superset of the
// linear-interpolation answer, which in turn is a superset of the
// sampled-inside answer.

// PossiblyResult classifies objects for an uncertainty-aware
// passes-through query.
type PossiblyResult struct {
	// Definite objects have a raw sample inside the region.
	Definite []moft.Oid
	// Likely objects enter under linear interpolation but have no
	// sample inside.
	Likely []moft.Oid
	// Possible objects only qualify under the bead model (some bead's
	// projection may intersect the region at speed vmax).
	Possible []moft.Oid
}

// errSpeedFactor is shared by the sharded coordinator so both engines
// reject an invalid speed factor with the identical error.
func errSpeedFactor(f float64) error {
	return fmt.Errorf("core: speed factor must be ≥ 1, got %g", f)
}

// ObjectsPossiblyPassingThrough stratifies the objects of a table by
// their relation to polygon pg during iv: definitely inside (sampled),
// likely inside (interpolated crossing), or possibly inside (lifeline
// bead at speedFactor × the object's maximum observed leg speed).
func (e *Engine) ObjectsPossiblyPassingThrough(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval, speedFactor float64) (res PossiblyResult, err error) {
	qc, ctx, done := e.begin(ctx, "objects_possibly_passing_through", table)
	defer done(&err)
	qc.noteWindow(iv)
	if speedFactor < 1 {
		return PossiblyResult{}, errSpeedFactor(speedFactor)
	}
	lits, err := e.Trajectories(ctx, table)
	if err != nil {
		return PossiblyResult{}, err
	}
	sampled, err := e.ObjectsSampledInside(ctx, table, pg, iv)
	if err != nil {
		return PossiblyResult{}, err
	}
	sampledSet := make(map[moft.Oid]bool, len(sampled))
	for i, o := range sampled {
		if i%checkEvery == 0 {
			if err := qc.step(ctx); err != nil {
				return PossiblyResult{}, err
			}
		}
		sampledSet[o] = true
	}
	interp, err := e.ObjectsPassingThrough(ctx, table, pg, iv)
	if err != nil {
		return PossiblyResult{}, err
	}
	interpSet := make(map[moft.Oid]bool, len(interp))
	for i, o := range interp {
		if i%checkEvery == 0 {
			if err := qc.step(ctx); err != nil {
				return PossiblyResult{}, err
			}
		}
		interpSet[o] = true
	}

	res.Definite = sampled
	for i, o := range interp {
		if i%checkEvery == 0 {
			if err := qc.step(ctx); err != nil {
				return PossiblyResult{}, err
			}
		}
		if !sampledSet[o] {
			res.Likely = append(res.Likely, o)
		}
	}
	for oid, l := range lits {
		if interpSet[oid] {
			continue
		}
		if err := qc.addRows(ctx, int64(len(l.Sample()))); err != nil {
			return PossiblyResult{}, err
		}
		vmax := l.MaxSpeed() * speedFactor
		if vmax == 0 {
			continue
		}
		for _, b := range traj.Beads(l, vmax) {
			if b.T2 < float64(iv.Lo) || b.T1 > float64(iv.Hi) {
				continue
			}
			if b.MayIntersectPolygon(pg, 32) {
				res.Possible = append(res.Possible, oid)
				break
			}
		}
	}
	sort.Slice(res.Likely, func(i, j int) bool { return res.Likely[i] < res.Likely[j] })
	sort.Slice(res.Possible, func(i, j int) bool { return res.Possible[i] < res.Possible[j] })
	return res, nil
}
