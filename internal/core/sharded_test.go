package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mogis/internal/core"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/qerr"
	"mogis/internal/telemetry"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// newShardedFixture builds one randomized city+trajectory workload
// (the identity tests sweep several seeds) and an unsharded baseline
// engine over it.
func newShardedFixture(t *testing.T, seed int64) (*robustWorkload, *moft.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	city := workload.GenCity(workload.CityConfig{Seed: seed, Cols: 4, Rows: 4})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed:    seed * 31,
		Objects: 40 + rng.Intn(24),
		Samples: 20 + rng.Intn(16),
	})
	lo, hi, _ := fm.TimeSpan()
	_, eng := city.Context(fm)
	met := obs.NewMetrics(obs.NewRegistry())
	eng.SetMetrics(met)
	pg, ok := city.Ln.Polygon(layer.Gid(1 + rng.Intn(8)))
	if !ok {
		t.Fatal("city has no neighborhood polygon")
	}
	w := &robustWorkload{
		eng: eng, met: met, pg: pg,
		center: city.Extent.Center(),
		radius: city.Extent.Width() / 4,
		win:    timedim.Interval{Lo: lo, Hi: hi - (hi-lo)/4},
		mid:    lo + (hi-lo)/2,
	}
	return w, fm
}

// shardedQueries enumerates every scattered or shard-routed entry
// point as a (name, run) pair returning an arbitrary comparable value;
// reflect.DeepEqual on the values is the byte-identity check (it
// distinguishes nil from empty slices and maps).
func shardedQueries(w *robustWorkload, q core.Querier) map[string]func(ctx context.Context) (any, error) {
	return map[string]func(ctx context.Context) (any, error){
		"ObjectsSampledAt": func(ctx context.Context) (any, error) {
			v, err := q.ObjectsSampledAt(ctx, "FM", w.mid, w.pg)
			return v, err
		},
		"ObjectsInterpolatedAt": func(ctx context.Context) (any, error) {
			v, err := q.ObjectsInterpolatedAt(ctx, "FM", w.mid, w.pg)
			return v, err
		},
		"Trajectories": func(ctx context.Context) (any, error) {
			lits, err := q.Trajectories(ctx, "FM")
			if err != nil {
				return nil, err
			}
			// Compare content, not cache pointers: per-oid samples.
			out := make(map[moft.Oid]any, len(lits))
			for oid, l := range lits {
				out[oid] = l.Sample()
			}
			return out, nil
		},
		"ObjectsPassingThrough": func(ctx context.Context) (any, error) {
			v, err := q.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
			return v, err
		},
		"ObjectsSampledInside": func(ctx context.Context) (any, error) {
			v, err := q.ObjectsSampledInside(ctx, "FM", w.pg, w.win)
			return v, err
		},
		"CountSamplesInside": func(ctx context.Context) (any, error) {
			v, err := q.CountSamplesInside(ctx, "FM", w.pg, w.win)
			return v, err
		},
		"TimeSpentInside": func(ctx context.Context) (any, error) {
			v, err := q.TimeSpentInside(ctx, "FM", w.pg, w.win)
			return v, err
		},
		"ObjectsEverWithinRadius": func(ctx context.Context) (any, error) {
			v, err := q.ObjectsEverWithinRadius(ctx, "FM", w.center, w.radius, w.win)
			return v, err
		},
		"CountPassingThroughGeometries": func(ctx context.Context) (any, error) {
			v, err := q.CountPassingThroughGeometries(ctx, "FM", "Ln", []layer.Gid{1, 2, 3}, w.win)
			return v, err
		},
		"TrajectoryAggregate": func(ctx context.Context) (any, error) {
			v, err := q.TrajectoryAggregate(ctx, "FM", 7)
			return v, err
		},
		"ObjectsPossiblyPassingThrough": func(ctx context.Context) (any, error) {
			v, err := q.ObjectsPossiblyPassingThrough(ctx, "FM", w.pg, w.win, 1.5)
			return v, err
		},
	}
}

// TestShardedDeterministicMerge is the merge-order property test: on
// randomized tables, every sharded query method at shards = 1, 2, 3
// and 7 must return a result byte-identical (reflect.DeepEqual,
// including nil-vs-empty conventions) to the unsharded engine — on
// both the grid-accelerated and the scan path.
func TestShardedDeterministicMerge(t *testing.T) {
	for _, seed := range []int64{3, 17, 42} {
		w, _ := newShardedFixture(t, seed)
		for _, grid := range []int{0, -1} {
			w.eng.SetAggGrid(grid)
			w.eng.ResetCache()
			want := map[string]any{}
			for name, q := range shardedQueries(w, w.eng) {
				v, err := q(context.Background())
				if err != nil {
					t.Fatalf("seed %d grid %d unsharded %s: %v", seed, grid, name, err)
				}
				want[name] = v
			}
			for _, shards := range []int{1, 2, 3, 7} {
				se := core.NewSharded(w.eng.Context(), shards)
				se.SetMetrics(w.met)
				se.SetAggGrid(grid)
				for name, q := range shardedQueries(w, se) {
					got, err := q(context.Background())
					if err != nil {
						t.Fatalf("seed %d grid %d shards %d %s: %v", seed, grid, shards, name, err)
					}
					if !reflect.DeepEqual(got, want[name]) {
						t.Errorf("seed %d grid %d shards %d %s diverged:\n got %#v\nwant %#v",
							seed, grid, shards, name, got, want[name])
					}
				}
			}
		}
	}
}

// TestShardedMissingObjectError: routing to the owning shard preserves
// the unsharded error for an unknown object.
func TestShardedMissingObjectError(t *testing.T) {
	w := newRobustWorkload(t)
	_, wantErr := w.eng.TrajectoryAggregate(context.Background(), "FM", 9999)
	_, gotErr := w.sharded.TrajectoryAggregate(context.Background(), "FM", 9999)
	if wantErr == nil || gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("sharded error %v, unsharded %v", gotErr, wantErr)
	}
	_, wantErr = w.eng.Trajectories(context.Background(), "NoSuchTable")
	_, gotErr = w.sharded.Trajectories(context.Background(), "NoSuchTable")
	if wantErr == nil || gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("sharded unknown-table error %v, unsharded %v", gotErr, wantErr)
	}
}

// TestShardedBudgetGlobal: MaxRows bounds the whole scattered query
// via the shared atomic counters — a budget below the total scan but
// above any single shard's share must still trip.
func TestShardedBudgetGlobal(t *testing.T) {
	w := newRobustWorkload(t)
	col := telemetry.New(telemetry.Config{Registry: obs.NewRegistry(), SampleEvery: -1})
	w.sharded.SetTelemetry(col)
	if _, err := w.sharded.TimeSpentInside(context.Background(), "FM", w.pg, w.win); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	recs := col.Recent(1)
	if len(recs) != 1 {
		t.Fatalf("expected 1 telemetry record, got %d", len(recs))
	}
	total := recs[0].RowsScanned
	if total == 0 {
		t.Fatal("warm query scanned no rows")
	}
	// Per shard ≈ total/3; a budget of total/2 cannot trip any shard
	// alone but must trip the shared counter. The interval cache would
	// satisfy the repeat query without scanning, so drop it first.
	w.sharded.ResetCache()
	ctx := core.WithBudget(context.Background(), core.Budget{MaxRows: total / 2})
	_, err := w.sharded.TimeSpentInside(ctx, "FM", w.pg, w.win)
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetError", err)
	}
	if be.Resource != "rows" {
		t.Errorf("Resource = %q, want rows", be.Resource)
	}
	// The abort left the coordinator coherent.
	if _, err := w.sharded.TimeSpentInside(context.Background(), "FM", w.pg, w.win); err != nil {
		t.Errorf("unbudgeted retry: %v", err)
	}
}

// TestShardedTelemetryOneRecord: a scattered query records exactly one
// QueryRecord, carrying per-shard rows/cache attribution that sums to
// the record's totals — even for an entry point that nests other entry
// points per shard.
func TestShardedTelemetryOneRecord(t *testing.T) {
	w := newRobustWorkload(t)
	col := telemetry.New(telemetry.Config{Registry: obs.NewRegistry(), SampleEvery: -1})
	w.sharded.SetTelemetry(col)

	before := w.met.Query(7).Value()
	if _, err := w.sharded.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win); err != nil {
		t.Fatal(err)
	}
	recs := col.Recent(10)
	if len(recs) != 1 {
		t.Fatalf("scattered query recorded %d QueryRecords, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Op != "objects_passing_through" || rec.Table != "FM" {
		t.Fatalf("record %s/%s, want objects_passing_through/FM", rec.Op, rec.Table)
	}
	if len(rec.Shards) != w.sharded.Shards() {
		t.Fatalf("record has %d shard slots, want %d", len(rec.Shards), w.sharded.Shards())
	}
	var rows, hits, misses int64
	for _, s := range rec.Shards {
		rows += s.RowsScanned
		hits += s.CacheHits
		misses += s.CacheMisses
	}
	if rows != rec.RowsScanned || hits != rec.CacheHits || misses != rec.CacheMisses {
		t.Errorf("shard attribution (%d rows, %d hits, %d misses) does not sum to record totals (%d, %d, %d)",
			rows, hits, misses, rec.RowsScanned, rec.CacheHits, rec.CacheMisses)
	}
	if got := w.met.Query(7).Value(); got != before+1 {
		t.Errorf("Query(7) counted %d for one logical query, want 1", got-before)
	}

	// Nested entry point: still exactly one record for the outer op.
	if _, err := w.sharded.ObjectsPossiblyPassingThrough(context.Background(), "FM", w.pg, w.win, 1.5); err != nil {
		t.Fatal(err)
	}
	recs = col.Recent(10)
	if len(recs) != 2 {
		t.Fatalf("nested scattered query recorded %d new QueryRecords, want 1 (total 2)", len(recs)-1)
	}
	if recs[0].Op != "objects_possibly_passing_through" {
		t.Fatalf("newest record op %s, want objects_possibly_passing_through", recs[0].Op)
	}
}

// TestShardedInvalidationFanOut: after mutating the base table,
// InvalidateTrajectories repartitions and every shard rebuilds — the
// sharded answer tracks a fresh unsharded engine over the mutated
// table.
func TestShardedInvalidationFanOut(t *testing.T) {
	w, fm := newShardedFixture(t, 99)
	se := core.NewSharded(w.eng.Context(), 3)
	se.SetMetrics(w.met)
	ctx := context.Background()

	beforeMut, err := se.TimeSpentInside(ctx, "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}

	// Park a new object inside the query polygon for the whole window.
	c := w.pg.Centroid()
	fm.Add(8888, w.win.Lo, c.X, c.Y)
	fm.Add(8888, w.win.Hi, c.X, c.Y)
	w.eng.InvalidateTrajectories("FM")
	se.InvalidateTrajectories("FM")

	want, err := w.eng.TimeSpentInside(ctx, "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}
	got, err := se.TimeSpentInside(ctx, "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-invalidation sharded answer diverged:\n got %v\nwant %v", got, want)
	}
	if _, ok := got[8888]; !ok {
		t.Error("mutation not visible after invalidation fan-out")
	}
	if reflect.DeepEqual(got, beforeMut) {
		t.Error("answer unchanged by the mutation — stale partition served")
	}
}

// TestShardedCancellation: a pre-cancelled context aborts a scattered
// query with a typed cancellation before any shard commits work.
func TestShardedCancellation(t *testing.T) {
	w := newRobustWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.sharded.ObjectsPassingThrough(ctx, "FM", w.pg, w.win); !qerr.IsCancel(err) {
		t.Fatalf("got %v, want cancellation", err)
	}
	if _, err := w.sharded.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win); err != nil {
		t.Fatalf("query after cancelled query: %v", err)
	}
}

// TestShardedConcurrentStorm hammers one ShardedEngine from many
// goroutines with mixed scattered queries interleaved with
// invalidations, checking every answer against a serial unsharded
// engine. Run under -race (the shard-race CI job) this is the
// coordinator's thread-safety and determinism contract.
func TestShardedConcurrentStorm(t *testing.T) {
	w := newRobustWorkload(t)
	serial := core.New(w.eng.Context())
	serial.SetMetrics(obs.NewMetrics(obs.NewRegistry()))
	serial.SetWorkers(1)
	ctx := context.Background()

	wantPass, err := serial.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}
	wantTime, err := serial.TimeSpentInside(ctx, "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := serial.CountSamplesInside(ctx, "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					got, err := w.sharded.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
					if err != nil {
						errc <- err
						return
					}
					if !eqOids(got, wantPass) {
						errc <- fmt.Errorf("ObjectsPassingThrough diverged under load: %v", got)
						return
					}
				case 1:
					got, err := w.sharded.TimeSpentInside(ctx, "FM", w.pg, w.win)
					if err != nil {
						errc <- err
						return
					}
					if !eqDurations(got, wantTime) {
						errc <- fmt.Errorf("TimeSpentInside diverged under load: %v", got)
						return
					}
				case 2:
					got, err := w.sharded.CountSamplesInside(ctx, "FM", w.pg, w.win)
					if err != nil {
						errc <- err
						return
					}
					if got != wantCount {
						errc <- fmt.Errorf("CountSamplesInside = %d, want %d", got, wantCount)
						return
					}
				case 3:
					if i%5 == 0 {
						w.sharded.InvalidateTrajectories("FM")
					} else {
						got, err := w.sharded.ObjectsSampledInside(ctx, "FM", w.pg, w.win)
						if err != nil {
							errc <- err
							return
						}
						if got == nil {
							errc <- fmt.Errorf("ObjectsSampledInside returned nil slice")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestShardedWorkerSplit: the configured fan-out width divides across
// shards instead of multiplying, and clamps at 1 per shard.
func TestShardedWorkerSplit(t *testing.T) {
	w := newRobustWorkload(t)
	// Smoke-check the knob end to end at a width smaller than the
	// shard count (each shard gets the minimum of 1).
	w.sharded.SetWorkers(2)
	got, err := w.sharded.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}
	w.sharded.SetWorkers(0)
	again, err := w.sharded.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}
	if !eqOids(got, again) {
		t.Fatalf("worker width changed the answer: %v vs %v", got, again)
	}
}
