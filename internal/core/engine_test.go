package core_test

import (
	"context"

	"math"
	"testing"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/olap"
	"mogis/internal/scenario"
	"mogis/internal/timedim"
)

func sc(t *testing.T) *scenario.Scenario {
	t.Helper()
	return scenario.New()
}

// --- Type 1: spatial aggregation -------------------------------------

func TestType1GeometricAggregate(t *testing.T) {
	s := sc(t)
	meir, _ := s.Ln.Polygon(scenario.PgMeir)
	// Population as a density of 400 people per unit² over Meir
	// (area 150) → 60000.
	v, err := s.Engine.GeometricAggregate(context.Background(), gis.Aggregation{
		C: gis.Region{Polygons: []geom.Polygon{meir}},
		H: gis.ConstDensity(400),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-60000) > 1e-6 {
		t.Errorf("integrated population = %v, want 60000", v)
	}
}

// --- Type 2: summable rewriting --------------------------------------

func TestType2Summable(t *testing.T) {
	s := sc(t)
	ft := gis.NewFactTable(gis.FactSchema{Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population"}})
	ft.MustSet(scenario.PgMeir, 60000)
	ft.MustSet(scenario.PgDam, 45000)
	ft.MustSet(scenario.PgZuid, 30000)
	v, err := s.Engine.SummableOverIDs(context.Background(), []layer.Gid{scenario.PgMeir, scenario.PgDam}, ft, "population")
	if err != nil {
		t.Fatal(err)
	}
	if v != 105000 {
		t.Errorf("summable = %v", v)
	}
}

// --- Type 3: pure trajectory-sample aggregation ----------------------

func TestType3MaxBusesPerHour(t *testing.T) {
	s := sc(t)
	// "Maximum number of buses per hour on Monday morning": group the
	// morning samples per hour, take the max count.
	f := fo.And(
		&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.TimeRollup{Cat: timedim.CatTimeOfDay, T: fo.V("t"), V: fo.CStr(timedim.Morning)},
		&fo.TimeRollup{Cat: timedim.CatDayOfWeek, T: fo.V("t"), V: fo.CStr("Monday")},
		&fo.TimeRollup{Cat: timedim.CatHour, T: fo.V("t"), V: fo.V("h")},
	)
	res, err := s.Engine.AggregateRegion(context.Background(), f, []fo.Var{"o", "t", "h"}, olap.Count, "", []fo.Var{"h"})
	if err != nil {
		t.Fatal(err)
	}
	// Morning samples: 9h: O1; 10h: O1,O2,O6; 11h: O1,O2,O5,O6.
	maxN := 0.0
	for _, row := range res.Rows {
		if row.Value > maxN {
			maxN = row.Value
		}
	}
	if maxN != 4 {
		t.Errorf("max buses per hour = %v, want 4:\n%v", maxN, res)
	}
}

// --- Type 4: samples under geometric conditions ----------------------

func TestType4RegionalCount(t *testing.T) {
	s := sc(t)
	// "Number of buses in the southern region in the morning" (Q1
	// pattern): south = Meir+Dam+Zuid.
	f := fo.Exists([]fo.Var{"x", "y", "pg"}, fo.And(
		&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.TimeRollup{Cat: timedim.CatTimeOfDay, T: fo.V("t"), V: fo.CStr(timedim.Morning)},
		&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
		&fo.GeomIn{G: fo.V("pg"), IDs: []layer.Gid{scenario.PgMeir, scenario.PgDam, scenario.PgZuid}},
	))
	rel, err := s.Engine.RegionC(context.Background(), f, []fo.Var{"o"})
	if err != nil {
		t.Fatal(err)
	}
	// Objects with morning samples in the south: O1, O2, O6 (at 11h in
	// Zuid). O5 is in Berchem (north).
	if rel.Len() != 3 {
		t.Errorf("southern objects = %v", rel)
	}
}

// --- Type 5: second-order region -------------------------------------

func TestType5SecondOrderRegion(t *testing.T) {
	s := sc(t)
	// "Neighborhoods where the number of people with income < 1500 is
	// larger than 50,000": population integrated as a density per
	// polygon, gated at 50k, intersected with the low-income set.
	popDensity := map[layer.Gid]float64{
		scenario.PgMeir: 400, // area 150 → 60000
		scenario.PgDam:  300, // area 150 → 45000
	}
	inner := func(id layer.Gid) (float64, error) {
		d, ok := popDensity[id]
		if !ok {
			return 0, nil // high-income: not counted
		}
		pg, _ := s.Ln.Polygon(id)
		return s.Engine.GeometricAggregate(context.Background(), gis.Aggregation{
			C: gis.Region{Polygons: []geom.Polygon{pg}},
			H: gis.ConstDensity(d),
		})
	}
	ids, err := s.Engine.FilterGeometriesByAggregate(context.Background(), "Ln", layer.KindPolygon, inner, fo.GT, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != scenario.PgMeir {
		t.Fatalf("gated neighborhoods = %v, want [Meir]", ids)
	}
	// Now the Type-4 count over that region: morning buses in Meir.
	f := fo.Exists([]fo.Var{"x", "y", "pg"}, fo.And(
		&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.TimeRollup{Cat: timedim.CatTimeOfDay, T: fo.V("t"), V: fo.CStr(timedim.Morning)},
		&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
		&fo.GeomIn{G: fo.V("pg"), IDs: ids},
	))
	n, err := s.Engine.CountRegion(context.Background(), f, []fo.Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // O1's three morning samples
		t.Errorf("second-order count = %d, want 3", n)
	}
}

func TestFilterGeometriesOps(t *testing.T) {
	s := sc(t)
	area := func(id layer.Gid) (float64, error) {
		pg, _ := s.Ln.Polygon(id)
		return pg.Area(), nil
	}
	cases := []struct {
		op   fo.CmpOp
		th   float64
		want int
	}{
		{fo.GT, 200, 3}, // Zuid, Linkeroever, Berchem (300 each)
		{fo.GE, 150, 5}, // all
		{fo.LT, 200, 2}, // Meir, Dam
		{fo.LE, 150, 2}, // Meir, Dam
		{fo.EQ, 300, 3}, // the three 300s
		{fo.NE, 300, 2}, // the two 150s
	}
	for _, c := range cases {
		ids, err := s.Engine.FilterGeometriesByAggregate(context.Background(), "Ln", layer.KindPolygon, area, c.op, c.th)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != c.want {
			t.Errorf("op %v threshold %v: %d ids, want %d", c.op, c.th, len(ids), c.want)
		}
	}
	if _, err := s.Engine.FilterGeometriesByAggregate(context.Background(), "Lzz", layer.KindPolygon, area, fo.GT, 0); err == nil {
		t.Error("unknown layer accepted")
	}
	bad := func(layer.Gid) (float64, error) { return 0, errFixture }
	if _, err := s.Engine.FilterGeometriesByAggregate(context.Background(), "Ln", layer.KindPolygon, bad, fo.GT, 0); err == nil {
		t.Error("inner error swallowed")
	}
}

var errFixture = errTest{}

type errTest struct{}

func (errTest) Error() string { return "fixture error" }

// --- Type 6: trajectory as a static object ---------------------------

func TestType6Snapshot(t *testing.T) {
	s := sc(t)
	berchem, _ := s.Ln.Polygon(scenario.PgBerchem)
	// At T(3) = 11:00, O5 is sampled at (30,20) in Berchem.
	got, err := s.Engine.ObjectsSampledAt(context.Background(), "FMbus", scenario.T(3), berchem)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("sampled at 11:00 in Berchem = %v", got)
	}
	// No samples at 11:30 — the sample-level query returns nothing,
	// but O2 (moving Dam→Zuid) has an interpolated position.
	tMid := scenario.T(3) + 1800
	got, err = s.Engine.ObjectsSampledAt(context.Background(), "FMbus", tMid, berchem)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("sampled at 11:30 = %v", got)
	}
	zuid, _ := s.Ln.Polygon(scenario.PgZuid)
	interp, err := s.Engine.ObjectsInterpolatedAt(context.Background(), "FMbus", tMid, zuid)
	if err != nil {
		t.Fatal(err)
	}
	// O2 is halfway from (15,5) to (25,8) → (20,6.5), on the Dam/Zuid
	// border; O6's domain ended at 11:00.
	found := false
	for _, oid := range interp {
		if oid == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("interpolated at 11:30 in Zuid = %v, want O2 included", interp)
	}
}

// --- Type 7: interpolation-aware queries ------------------------------

func TestType7PassingThroughVsSampled(t *testing.T) {
	s := sc(t)
	dam, _ := s.Ln.Polygon(scenario.PgDam)
	window := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}

	sampled, err := s.Engine.ObjectsSampledInside(context.Background(), "FMbus", dam, window)
	if err != nil {
		t.Fatal(err)
	}
	passing, err := s.Engine.ObjectsPassingThrough(context.Background(), "FMbus", dam, window)
	if err != nil {
		t.Fatal(err)
	}
	// O2 is sampled in Dam; O6 only passes through. The difference is
	// exactly the paper's O6 discussion.
	if len(sampled) != 1 || sampled[0] != 2 {
		t.Errorf("sampled in Dam = %v", sampled)
	}
	if len(passing) != 2 || passing[0] != 2 || passing[1] != 6 {
		t.Errorf("passing through Dam = %v", passing)
	}
}

func TestType7TimeSpentInside(t *testing.T) {
	s := sc(t)
	meir, _ := s.Ln.Polygon(scenario.PgMeir)
	window := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}
	spent, err := s.Engine.TimeSpentInside(context.Background(), "FMbus", meir, window)
	if err != nil {
		t.Fatal(err)
	}
	// O1 spends its whole 3-hour domain inside Meir.
	if math.Abs(spent[1]-3*3600) > 1e-6 {
		t.Errorf("O1 time in Meir = %v, want %v", spent[1], 3*3600)
	}
	// O6 crosses Meir briefly; positive but far below an hour.
	if spent[6] <= 0 || spent[6] >= 3600 {
		t.Errorf("O6 time in Meir = %v", spent[6])
	}
	// O5 never touches Meir.
	if _, ok := spent[5]; ok {
		t.Error("O5 should not appear")
	}
}

func TestType7WithinRadius(t *testing.T) {
	s := sc(t)
	school, _ := s.Ls.Node(1) // (5,10) in Meir
	window := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}
	within, err := s.Engine.ObjectsEverWithinRadius(context.Background(), "FMbus", school, 5, window)
	if err != nil {
		t.Fatal(err)
	}
	// O1 moves along the diagonal of Meir; closest approach to (5,10)
	// is ~3.54 at (6.5,6.5)... distance from (6,6) to (5,10) is
	// sqrt(1+16)=4.12 ≤ 5, so O1 qualifies. O6 crosses Meir around
	// (8.33,15)..(10,14); distance to (5,10) ≥ 5? (10,14): 6.4; (8.33,15):
	// 6.0 — outside. So only O1.
	if len(within) != 1 {
		t.Fatalf("within radius = %v", within)
	}
	if _, ok := within[1]; !ok {
		t.Errorf("O1 missing: %v", within)
	}
	if within[1] <= 0 {
		t.Errorf("O1 duration = %v", within[1])
	}
}

func TestCountPassingThroughGeometries(t *testing.T) {
	s := sc(t)
	window := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}
	// Low-income region = Meir + Dam: O1 (inside), O2 (samples in
	// Dam), O6 (crosses) → 3 objects.
	n, err := s.Engine.CountPassingThroughGeometries(context.Background(), "FMbus", "Ln",
		[]layer.Gid{scenario.PgMeir, scenario.PgDam}, window)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("passing through low-income = %d, want 3", n)
	}
	// Errors.
	if _, err := s.Engine.CountPassingThroughGeometries(context.Background(), "FMbus", "Lzz", nil, window); err == nil {
		t.Error("unknown layer accepted")
	}
	if _, err := s.Engine.CountPassingThroughGeometries(context.Background(), "FMbus", "Ln", []layer.Gid{99}, window); err == nil {
		t.Error("unknown polygon accepted")
	}
	if _, err := s.Engine.CountPassingThroughGeometries(context.Background(), "nope", "Ln", nil, window); err == nil {
		t.Error("unknown table accepted")
	}
}

// --- Type 8: trajectory aggregation -----------------------------------

func TestType8TrajectoryAggregate(t *testing.T) {
	s := sc(t)
	st, err := s.Engine.TrajectoryAggregate(context.Background(), "FMbus", 1)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 6 * math.Sqrt2 // (2,2)→(8,8) along the diagonal
	if math.Abs(st.Length-wantLen) > 1e-9 {
		t.Errorf("O1 length = %v, want %v", st.Length, wantLen)
	}
	if st.Duration != 3*3600 {
		t.Errorf("O1 duration = %v", st.Duration)
	}
	if math.Abs(st.AvgSpeed-wantLen/(3*3600)) > 1e-15 {
		t.Errorf("O1 avg speed = %v", st.AvgSpeed)
	}
	if st.Samples != 4 || st.Closed {
		t.Errorf("O1 stats = %+v", st)
	}
	if st.MaxSpeed < st.AvgSpeed {
		t.Errorf("max < avg: %+v", st)
	}
	if _, err := s.Engine.TrajectoryAggregate(context.Background(), "FMbus", 99); err == nil {
		t.Error("unknown object accepted")
	}
	if _, err := s.Engine.TrajectoryAggregate(context.Background(), "nope", 1); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestTrajectoriesCacheInvalidation(t *testing.T) {
	s := sc(t)
	l1, err := s.Engine.Trajectories(context.Background(), "FMbus")
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := s.Engine.Trajectories(context.Background(), "FMbus")
	if &l1 == &l2 {
		t.Log("maps compared by pointer identity only")
	}
	if len(l1) != 6 {
		t.Errorf("trajectories = %d", len(l1))
	}
	s.Engine.InvalidateTrajectories("FMbus")
	l3, err := s.Engine.Trajectories(context.Background(), "FMbus")
	if err != nil || len(l3) != 6 {
		t.Errorf("after invalidation: %v, %d", err, len(l3))
	}
}

func TestRatePerHour(t *testing.T) {
	if core.RatePerHour(4, 3) != 4.0/3 {
		t.Error("rate")
	}
	if core.RatePerHour(4, 0) != 0 {
		t.Error("zero hours")
	}
}
