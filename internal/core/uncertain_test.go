package core_test

import (
	"context"

	"testing"

	"mogis/internal/scenario"
	"mogis/internal/timedim"
)

func TestObjectsPossiblyPassingThrough(t *testing.T) {
	s := sc(t)
	dam, _ := s.Ln.Polygon(scenario.PgDam)
	window := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}

	res, err := s.Engine.ObjectsPossiblyPassingThrough(context.Background(), "FMbus", dam, window, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// O2 is sampled inside Dam → definite.
	if len(res.Definite) != 1 || res.Definite[0] != 2 {
		t.Errorf("definite = %v", res.Definite)
	}
	// O6 crosses Dam only under interpolation → likely.
	if len(res.Likely) != 1 || res.Likely[0] != 6 {
		t.Errorf("likely = %v", res.Likely)
	}
	// The three strata are disjoint.
	seen := map[int64]int{}
	for _, o := range res.Definite {
		seen[int64(o)]++
	}
	for _, o := range res.Likely {
		seen[int64(o)]++
	}
	for _, o := range res.Possible {
		seen[int64(o)]++
	}
	for oid, c := range seen {
		if c > 1 {
			t.Errorf("object %d appears in %d strata", oid, c)
		}
	}
	// Monotonicity in the speed factor: a larger factor can only add
	// possible objects.
	res2, err := s.Engine.ObjectsPossiblyPassingThrough(context.Background(), "FMbus", dam, window, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Possible) < len(res.Possible) {
		t.Errorf("possible shrank with larger speed factor: %v vs %v", res2.Possible, res.Possible)
	}
	// Bad factor errors.
	if _, err := s.Engine.ObjectsPossiblyPassingThrough(context.Background(), "FMbus", dam, window, 0.5); err == nil {
		t.Error("speed factor < 1 accepted")
	}
	if _, err := s.Engine.ObjectsPossiblyPassingThrough(context.Background(), "nope", dam, window, 2); err == nil {
		t.Error("unknown table accepted")
	}
}
