package core_test

import (
	"context"

	"testing"

	"mogis/internal/obs"
	"mogis/internal/scenario"
	"mogis/internal/timedim"
)

// TestIntervalCacheLRUEviction drives the interval cache through its
// SetIntervalCacheCap boundary: at the cap the least-recently-used
// polygon is evicted (a recently hit entry survives), the entries
// gauge tracks the live set, and the eviction counter fires.
func TestIntervalCacheLRUEviction(t *testing.T) {
	s := sc(t)
	met := obs.NewMetrics(obs.NewRegistry())
	s.Engine.SetMetrics(met)
	s.Engine.SetIntervalCacheCap(2)
	iv := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}

	meir, _ := s.Ln.Polygon(scenario.PgMeir)
	dam, _ := s.Ln.Polygon(scenario.PgDam)
	zuid, _ := s.Ln.Polygon(scenario.PgZuid)

	q := func(pgName string) {
		t.Helper()
		var pg = meir
		switch pgName {
		case "dam":
			pg = dam
		case "zuid":
			pg = zuid
		}
		if _, err := s.Engine.TimeSpentInside(context.Background(), "FMbus", pg, iv); err != nil {
			t.Fatal(err)
		}
	}

	q("meir") // miss → insert; LRU: [meir]
	q("dam")  // miss → insert; LRU: [meir, dam]
	if g := met.IntervalCacheEntries.Value(); g != 2 {
		t.Fatalf("entries gauge = %d after two inserts, want 2", g)
	}
	q("meir") // hit → meir becomes most recent; LRU: [dam, meir]
	q("zuid") // miss at cap → evict dam (oldest); LRU: [meir, zuid]
	if g := met.IntervalCacheEntries.Value(); g != 2 {
		t.Errorf("entries gauge = %d after eviction, want 2", g)
	}
	if ev := met.IntervalCacheEvictions.Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	q("meir") // must still be cached: it was recently used
	if h := met.IntervalCacheHits.Value(); h != 2 {
		t.Errorf("hits = %d, want 2 (meir touched twice after insert)", h)
	}
	q("dam") // was evicted → miss again
	if m := met.IntervalCacheMisses.Value(); m != 4 {
		t.Errorf("misses = %d, want 4 (meir, dam, zuid, dam-again)", m)
	}
	if ev := met.IntervalCacheEvictions.Value(); ev != 2 {
		t.Errorf("evictions = %d, want 2 (zuid was oldest at the second overflow)", ev)
	}
	if g := met.IntervalCacheEntries.Value(); g != 2 {
		t.Errorf("entries gauge = %d at end, want 2", g)
	}
}
