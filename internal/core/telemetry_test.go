package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mogis/internal/core"
	"mogis/internal/faultpoint"
	"mogis/internal/obs"
	"mogis/internal/qerr"
	"mogis/internal/telemetry"
)

// telemetryWorkload attaches an isolated collector (own registry, JSONL
// log into buf, trace sampling off) to a robust workload's engine.
func telemetryWorkload(t *testing.T) (*robustWorkload, *telemetry.Collector, *bytes.Buffer) {
	t.Helper()
	w := newRobustWorkload(t)
	var buf bytes.Buffer
	col := telemetry.New(telemetry.Config{
		Registry:    obs.NewRegistry(),
		LogWriter:   &buf,
		SampleEvery: -1,
	})
	w.eng.SetTelemetry(col)
	return w, col, &buf
}

// opRow finds one op's row in the stats table.
func opRow(t *testing.T, col *telemetry.Collector, op string) telemetry.OpStats {
	t.Helper()
	for _, row := range col.Stats().Ops {
		if row.Op == op {
			return row
		}
	}
	t.Fatalf("no stats row for op %q", op)
	return telemetry.OpStats{}
}

// TestChaosTelemetryOutcomes drives one query shape through every
// faultpoint error class — injected error, recovered panic,
// cancellation, row budget, result budget, plus a clean run — and
// asserts each class surfaces in both the /debug/stats table and the
// structured query log.
func TestChaosTelemetryOutcomes(t *testing.T) {
	w, col, buf := telemetryWorkload(t)
	pass := func(ctx context.Context) error {
		_, err := w.eng.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
		return err
	}

	if err := pass(context.Background()); err != nil {
		t.Fatalf("baseline query: %v", err)
	}

	w.eng.ResetCache()
	faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModeError, 0)
	err := pass(context.Background())
	faultpoint.Reset()
	if err == nil {
		t.Fatal("injected fault did not surface")
	}

	w.eng.ResetCache()
	faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModePanic, 0)
	err = pass(context.Background())
	faultpoint.Reset()
	if !qerr.IsPanic(err) {
		t.Fatalf("got %v, want recovered panic", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pass(ctx); !qerr.IsCancel(err) {
		t.Fatalf("got %v, want cancellation", err)
	}

	w.eng.ResetCache()
	if err := pass(core.WithBudget(context.Background(), core.Budget{MaxRows: 1})); !core.IsBudget(err) {
		t.Fatalf("got %v, want rows budget abort", err)
	}
	if err := pass(core.WithBudget(context.Background(), core.Budget{MaxResults: 1})); !core.IsBudget(err) {
		t.Fatalf("got %v, want results budget abort", err)
	}

	row := opRow(t, col, "objects_passing_through")
	if row.Queries != 6 {
		t.Errorf("queries = %d, want 6", row.Queries)
	}
	if row.Errors != 1 || row.Panics != 1 || row.Cancelled != 1 ||
		row.BudgetRows != 1 || row.BudgetResults != 1 {
		t.Errorf("outcome tallies wrong: %+v", row)
	}

	// Every class appears in the JSONL query log, with the error text
	// attached to the non-ok records.
	outcomes := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Op      string `json:"op"`
			Outcome string `json:"outcome"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("query log line is not JSON: %v\n%s", err, line)
		}
		outcomes[rec.Outcome]++
		if rec.Outcome != "ok" && rec.Error == "" {
			t.Errorf("non-ok log record without error text: %s", line)
		}
	}
	for _, want := range []string{"ok", "error", "panic", "cancelled", "budget_rows", "budget_results"} {
		if outcomes[want] != 1 {
			t.Errorf("query log has %d %q records, want 1 (all: %v)", outcomes[want], want, outcomes)
		}
	}
}

// TestEngineTelemetryPerOpRecords checks the engine bracket fills the
// whole record: op name, table, duration, rows scanned, and the cache
// hit/miss tally across a cold-then-warm LIT cache pair.
func TestEngineTelemetryPerOpRecords(t *testing.T) {
	w, col, _ := telemetryWorkload(t)
	ctx := context.Background()

	if _, err := w.eng.ObjectsPassingThrough(ctx, "FM", w.pg, w.win); err != nil {
		t.Fatal(err)
	}
	if _, err := w.eng.ObjectsPassingThrough(ctx, "FM", w.pg, w.win); err != nil {
		t.Fatal(err)
	}
	if _, err := w.eng.CountSamplesInside(ctx, "FM", w.pg, w.win); err != nil {
		t.Fatal(err)
	}

	recent := col.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("recent = %d records, want 3", len(recent))
	}
	// Newest first: [CountSamplesInside, warm pass, cold pass].
	cold, warm := recent[2], recent[1]
	for _, rec := range recent {
		if rec.Table != "FM" || rec.Duration <= 0 || rec.Outcome != telemetry.OutcomeOK {
			t.Errorf("incomplete record: %+v", rec)
		}
	}
	if cold.Op != "objects_passing_through" || warm.Op != "objects_passing_through" ||
		recent[0].Op != "count_samples_inside" {
		t.Fatalf("op order wrong: %v %v %v", recent[0].Op, recent[1].Op, recent[2].Op)
	}
	if cold.RowsScanned == 0 {
		t.Error("cold pass scanned no rows")
	}
	if cold.CacheMisses == 0 {
		t.Errorf("cold pass should miss the LIT cache: %+v", cold)
	}
	if warm.CacheHits == 0 {
		t.Errorf("warm pass should hit the LIT cache: %+v", warm)
	}

	if got := opRow(t, col, "objects_passing_through").Queries; got != 2 {
		t.Errorf("objects_passing_through queries = %d, want 2", got)
	}
	if got := opRow(t, col, "count_samples_inside").Queries; got != 1 {
		t.Errorf("count_samples_inside queries = %d, want 1", got)
	}

	// Detaching the collector silences the engine even though the
	// collector itself stays alive.
	w.eng.SetTelemetry(nil)
	if _, err := w.eng.CountSamplesInside(ctx, "FM", w.pg, w.win); err != nil {
		t.Fatal(err)
	}
	if got := len(col.Recent(0)); got != 3 {
		t.Errorf("detached engine still recorded: %d records", got)
	}
}

// TestTelemetryBracketAllocRegression pins the hot-path budget from
// the issue: recording a query must not add heap allocations to the
// bracket beyond the query's own work (one windowed-histogram insert
// plus atomic adds, all allocation-free when warm).
func TestTelemetryBracketAllocRegression(t *testing.T) {
	w := newRobustWorkload(t)
	ctx := context.Background()
	query := func() {
		if _, err := w.eng.TrajectoryAggregate(ctx, "FM", 1); err != nil {
			t.Fatal(err)
		}
	}

	w.eng.SetTelemetry(nil)
	query() // warm caches
	disabled := testing.AllocsPerRun(200, query)

	col := telemetry.New(telemetry.Config{Registry: obs.NewRegistry(), SampleEvery: -1})
	w.eng.SetTelemetry(col)
	query() // create the op's stats row
	enabled := testing.AllocsPerRun(200, query)

	if delta := enabled - disabled; delta > 1 {
		t.Errorf("telemetry adds %.1f allocs/query (disabled %.1f, enabled %.1f), want <= 1",
			delta, disabled, enabled)
	}
}
