package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mogis/internal/faultpoint"
	"mogis/internal/qerr"
	"mogis/internal/telemetry"
	"mogis/internal/timedim"
)

// This file implements the engine's per-query control plane: the
// resource Budget callers attach to a context, the qctl tracker every
// exported entry point threads through its scan loops and fan-outs,
// and the begin/done bracket that applies the wall-clock deadline,
// recovers panics at the API boundary, and classifies how each query
// ended into the obs counters (cancelled, budget-exceeded, panicked).

// checkEvery is the row stride between cooperative cancellation and
// budget checks inside scan loops: a cancel or deadline is observed
// within at most one stride (plus one chunk of fan-out work), keeping
// abort latency bounded without putting an atomic on every row.
const checkEvery = 1024

// Budget bounds one query's resource consumption. The zero value is
// unlimited. Attach it with WithBudget; every engine entry point
// enforces it at the same cooperative checkpoints that observe
// cancellation, returning a *BudgetError on the first limit crossed.
type Budget struct {
	// MaxRows caps the MOFT rows / trajectory samples the query may
	// examine (0 = unlimited).
	MaxRows int64
	// MaxResults caps the result items the query may produce — result
	// intervals for the trajectory paths, matched objects for scans
	// (0 = unlimited).
	MaxResults int64
	// Timeout, when positive, is a wall-clock deadline applied at
	// query entry via context.WithTimeout (composes with any deadline
	// already on the context; the earlier one wins).
	Timeout time.Duration
}

type budgetCtxKey struct{}

// WithBudget returns a context carrying b; engine queries run under
// it enforce the budget at their cancellation checkpoints.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return context.WithValue(ctx, budgetCtxKey{}, b)
}

// BudgetFrom extracts the budget attached by WithBudget, if any.
func BudgetFrom(ctx context.Context) (Budget, bool) {
	b, ok := ctx.Value(budgetCtxKey{}).(Budget)
	return b, ok
}

// BudgetError reports a query aborted at a resource budget.
type BudgetError struct {
	Resource string // "rows" or "results"
	Limit    int64
	Used     int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: query exceeded its %s budget (%d > %d)", e.Resource, e.Used, e.Limit)
}

// IsBudget reports whether err is a budget abort.
func IsBudget(err error) bool {
	var be *BudgetError
	return errors.As(err, &be)
}

// isInjected reports whether err originates at an armed faultpoint —
// a transient abort that must not evict cache entries (retry after
// disarming must rebuild cleanly).
func isInjected(err error) bool {
	var f *faultpoint.Fault
	return errors.As(err, &f)
}

// qctl is one query's control state: the budget in force, the
// rows/results consumed so far, and the cache hit/miss tally the
// telemetry record reports, shared atomically across the query's
// worker goroutines.
type qctl struct {
	budget      Budget
	rows        atomic.Int64
	results     atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// window is the query's time-interval width in model time
	// (Hi-Lo+1), 0 for untimed queries; reported on the telemetry
	// record so adaptive time-bucket sizing can observe the workload.
	window atomic.Int64
	// parent, when non-nil, is the coordinator-side tracker of the
	// logical query this qctl is one shard of. Budget limits are
	// enforced against the parent's counters so MaxRows/MaxResults
	// bound the whole scattered query, not each shard independently;
	// the local counters keep per-shard attribution.
	parent *qctl
	// shardLoads, on a coordinator-side qctl, receives each shard's
	// tally when its bracket closes (attachShards allocates it before
	// the scatter; slots are atomic because shard brackets close on
	// their own goroutines).
	shardLoads []shardTally
}

// shardTally accumulates one shard's contribution to a scattered
// query. Accumulated, not overwritten: entry points that nest other
// entry points (ObjectsPossiblyPassingThrough) close several shard
// brackets per shard.
type shardTally struct {
	rows   atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

// attachShards sizes the per-shard attribution slots. Call once,
// before any shard goroutine starts.
func (q *qctl) attachShards(n int) {
	q.shardLoads = make([]shardTally, n)
}

// accumulateShard folds a closing shard bracket's local tally into
// the coordinator's slot for that shard.
func (q *qctl) accumulateShard(idx int, child *qctl) {
	if idx < 0 || idx >= len(q.shardLoads) {
		return
	}
	s := &q.shardLoads[idx]
	s.rows.Add(child.rows.Load())
	s.hits.Add(child.cacheHits.Load())
	s.misses.Add(child.cacheMisses.Load())
}

// shardSnapshot renders the per-shard attribution for the telemetry
// record (nil when the query never scattered).
func (q *qctl) shardSnapshot() []telemetry.ShardLoad {
	if len(q.shardLoads) == 0 {
		return nil
	}
	out := make([]telemetry.ShardLoad, len(q.shardLoads))
	for i := range q.shardLoads {
		s := &q.shardLoads[i]
		out[i] = telemetry.ShardLoad{
			Shard:       i,
			RowsScanned: s.rows.Load(),
			CacheHits:   s.hits.Load(),
			CacheMisses: s.misses.Load(),
		}
	}
	return out
}

// shardCallKey marks a context as one shard's slice of a scattered
// query: the shard engine's begin chains its qctl to the
// coordinator's instead of opening an independent bracket.
type shardCallKey struct{}

type shardCall struct {
	parent *qctl
	idx    int
}

func withShardCall(ctx context.Context, parent *qctl, idx int) context.Context {
	return context.WithValue(ctx, shardCallKey{}, shardCall{parent: parent, idx: idx})
}

// cacheHit tallies one engine cache lookup (LIT cache, interval
// cache) for the query's telemetry record. Nil-safe.
func (q *qctl) cacheHit(hit bool) {
	if q == nil {
		return
	}
	if hit {
		q.cacheHits.Add(1)
		if q.parent != nil {
			q.parent.cacheHits.Add(1)
		}
	} else {
		q.cacheMisses.Add(1)
		if q.parent != nil {
			q.parent.cacheMisses.Add(1)
		}
	}
}

// noteWindow records the width of the query's closed time interval on
// the tracker (and, for a shard slice, on the logical query's
// tracker). Inverted intervals record nothing. Nil-safe.
func (q *qctl) noteWindow(iv timedim.Interval) {
	if q == nil || iv.Hi < iv.Lo {
		return
	}
	w := int64(iv.Hi-iv.Lo) + 1
	q.window.Store(w)
	if q.parent != nil {
		q.parent.window.Store(w)
	}
}

// step is the bare cooperative checkpoint: cancellation only.
func (q *qctl) step(ctx context.Context) error {
	return ctx.Err()
}

// addRows consumes n scanned rows and checks both cancellation and
// the row budget. Nil-safe (a nil qctl only checks the context).
func (q *qctl) addRows(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if q == nil {
		return nil
	}
	used := q.rows.Add(n)
	if q.parent != nil {
		used = q.parent.rows.Add(n)
	}
	if max := q.budget.MaxRows; max > 0 && used > max {
		return &BudgetError{Resource: "rows", Limit: max, Used: used}
	}
	return nil
}

// addResults consumes n produced result items against the budget.
func (q *qctl) addResults(n int64) error {
	if q == nil {
		return nil
	}
	used := q.results.Add(n)
	if q.parent != nil {
		used = q.parent.results.Add(n)
	}
	if max := q.budget.MaxResults; max > 0 && used > max {
		return &BudgetError{Resource: "results", Limit: max, Used: used}
	}
	return nil
}

// begin opens the per-query control bracket for an exported entry
// point: it resolves the context's Budget, applies its wall-clock
// deadline, and returns the tracker, the (possibly deadlined) context
// and the done func the entry point must defer with a pointer to its
// named error result. done recovers any panic that escaped the
// panic-isolated inner layers, releases the deadline timer, classifies
// the outcome into the obs counters and the trace, and — when a
// telemetry collector is attached — records one QueryRecord for the
// op/table pair. The clock reads happen only when telemetry is on, so
// the disabled bracket costs the same as before telemetry existed.
func (e *Engine) begin(ctx context.Context, op, table string) (*qctl, context.Context, func(*error)) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.isShard {
		if sc, ok := ctx.Value(shardCallKey{}).(shardCall); ok {
			return beginShard(ctx, sc)
		}
	}
	b, _ := BudgetFrom(ctx)
	cancel := func() {}
	if b.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, b.Timeout)
	}
	qc := &qctl{budget: b}
	tel := e.telemetry()
	var start time.Time
	if tel.Enabled() {
		start = time.Now()
	}
	done := func(errp *error) {
		if v := recover(); v != nil {
			*errp = qerr.NewPanic("core/query", v)
		}
		cancel()
		out := e.classify(*errp)
		if tel.Enabled() {
			rec := telemetry.QueryRecord{
				Op:          op,
				Table:       table,
				Start:       start,
				Duration:    time.Since(start),
				Outcome:     out,
				RowsScanned: qc.rows.Load(),
				Results:     qc.results.Load(),
				CacheHits:   qc.cacheHits.Load(),
				CacheMisses: qc.cacheMisses.Load(),
				Shards:      qc.shardSnapshot(),
				Window:      qc.window.Load(),
			}
			if *errp != nil {
				rec.Err = (*errp).Error()
			}
			tel.Record(rec)
		}
	}
	return qc, ctx, done
}

// beginShard opens the lightweight bracket a shard engine uses when
// its entry point is one slice of a scattered query: the qctl chains
// to the coordinator's (budgets enforced against the logical query's
// shared counters), no deadline is re-applied (the coordinator's
// bracket already did), and done neither classifies the outcome nor
// records telemetry — the coordinator's bracket does both exactly
// once per logical query — but still recovers panics so one shard
// blowing up surfaces as a typed error, and folds the shard's tally
// into the coordinator's attribution slot.
func beginShard(ctx context.Context, sc shardCall) (*qctl, context.Context, func(*error)) {
	qc := &qctl{budget: sc.parent.budget, parent: sc.parent}
	done := func(errp *error) {
		if v := recover(); v != nil {
			*errp = qerr.NewPanic("core/query", v)
		}
		sc.parent.accumulateShard(sc.idx, qc)
	}
	return qc, ctx, done
}

// classify maps a query's final error to the robustness counters and
// marks the trace, returning the telemetry outcome. Shared by begin's
// done func and the helpers that end queries off the main bracket.
func (e *Engine) classify(err error) telemetry.Outcome {
	if err == nil {
		return telemetry.OutcomeOK
	}
	met := e.metrics()
	var be *BudgetError
	switch {
	case qerr.IsCancel(err):
		met.QueriesCancelled.Inc()
		e.mctx.Tracer().Event("cancel")
		return telemetry.OutcomeCancelled
	case errors.As(err, &be):
		if be.Resource == "rows" {
			met.BudgetRowsExceeded.Inc()
			e.mctx.Tracer().Event("budget")
			return telemetry.OutcomeBudgetRows
		}
		met.BudgetResultsExceeded.Inc()
		e.mctx.Tracer().Event("budget")
		return telemetry.OutcomeBudgetResults
	case qerr.IsPanic(err):
		met.QueryPanics.Inc()
		return telemetry.OutcomePanic
	}
	return telemetry.OutcomeError
}
