package core_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"mogis/internal/faultpoint"
	"mogis/internal/moft"
	"mogis/internal/qerr"
)

// coreSites maps each engine-side faultpoint to a query guaranteed to
// traverse it (overlay/pair is exercised in internal/overlay). The
// chaos matrix below runs every site in every mode and asserts the
// robustness contract: typed errors out, caches coherent, retries
// bit-identical, no stranded goroutines.
func coreSites(w *robustWorkload) map[string]func(ctx context.Context) ([]moft.Oid, error) {
	passThrough := func(ctx context.Context) ([]moft.Oid, error) {
		return w.eng.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
	}
	return map[string]func(ctx context.Context) ([]moft.Oid, error){
		faultpoint.CoreLITBuild:       passThrough,
		faultpoint.CoreFanoutChunk:    passThrough,
		faultpoint.CorePrefilter:      passThrough,
		faultpoint.CoreIntervalInsert: passThrough,
		faultpoint.CoreGridBuild: func(ctx context.Context) ([]moft.Oid, error) {
			return w.eng.ObjectsSampledInside(ctx, "FM", w.pg, w.win)
		},
		faultpoint.CoreShardPartition: func(ctx context.Context) ([]moft.Oid, error) {
			return w.sharded.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
		},
	}
}

// TestChaosMatrix arms every core faultpoint in every injection mode
// and checks, per cell: the query fails with the right typed error
// (or, for a pure delay, is cancelled or completes correctly); after
// disarming, the identical query succeeds and matches the baseline
// bit-for-bit; and no goroutines are stranded by the injected failure.
func TestChaosMatrix(t *testing.T) {
	w := newRobustWorkload(t)
	sites := coreSites(w)

	// Baselines from the same engine before any fault: also proves each
	// query shape works, so a later nil error can only mean the site
	// was not traversed.
	baseline := map[string][]moft.Oid{}
	for site, q := range sites {
		out, err := q(context.Background())
		if err != nil {
			t.Fatalf("baseline for %s: %v", site, err)
		}
		baseline[site] = out
	}

	for site, q := range sites {
		for _, mode := range []faultpoint.Mode{faultpoint.ModeError, faultpoint.ModePanic, faultpoint.ModeDelay} {
			t.Run(fmt.Sprintf("%s/%s", site, mode), func(t *testing.T) {
				// Drop caches so build-path sites (lit-build, grid-build,
				// shard-partition) are traversed again, not skipped via
				// the latched unit.
				w.eng.ResetCache()
				w.sharded.ResetCache()
				before := runtime.NumGoroutine()

				switch mode {
				case faultpoint.ModeError:
					faultpoint.Arm(site, faultpoint.ModeError, 0)
					_, err := q(context.Background())
					faultpoint.Reset()
					var f *faultpoint.Fault
					if !errors.As(err, &f) {
						t.Fatalf("got %v, want injected fault", err)
					}
					if f.Site != site {
						t.Fatalf("fault site %q, want %q", f.Site, site)
					}
				case faultpoint.ModePanic:
					faultpoint.Arm(site, faultpoint.ModePanic, 0)
					_, err := q(context.Background())
					faultpoint.Reset()
					if !qerr.IsPanic(err) {
						t.Fatalf("got %v, want recovered panic", err)
					}
				case faultpoint.ModeDelay:
					// Cancel mid-delay: the next checkpoint after the
					// sleep observes the dead context. Sites with no
					// checkpoint between injection and return may still
					// complete — then the result must be correct.
					faultpoint.Arm(site, faultpoint.ModeDelay, 30*time.Millisecond)
					ctx, cancel := context.WithCancel(context.Background())
					timer := time.AfterFunc(5*time.Millisecond, cancel)
					out, err := q(ctx)
					timer.Stop()
					cancel()
					faultpoint.Reset()
					if err != nil {
						if !qerr.IsCancel(err) {
							t.Fatalf("got %v, want cancellation", err)
						}
					} else if !eqOids(out, baseline[site]) {
						t.Fatalf("delayed query completed with wrong result: %v", out)
					}
				}

				// Disarm-then-retry: the same query must now succeed and
				// match the baseline exactly (cache as-if-never-started).
				got, err := q(context.Background())
				if err != nil {
					t.Fatalf("retry after %s fault: %v", mode, err)
				}
				if !eqOids(got, baseline[site]) {
					t.Fatalf("retry diverged: got %v, want %v", got, baseline[site])
				}

				deadline := time.Now().Add(2 * time.Second)
				for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
					time.Sleep(5 * time.Millisecond)
				}
				if n := runtime.NumGoroutine(); n > before+2 {
					t.Errorf("goroutines stranded: before=%d after=%d", before, n)
				}
			})
		}
	}
}

// TestChaosCatalogCovered pins that the matrix exercises every known
// site except overlay/pair (owned by the overlay package's own chaos
// test) and the server/* sites (owned by internal/server's chaos
// matrix), so adding a faultpoint without chaos coverage fails here.
func TestChaosCatalogCovered(t *testing.T) {
	w := newRobustWorkload(t)
	sites := coreSites(w)
	for _, name := range faultpoint.Catalog() {
		if name == faultpoint.OverlayPair || strings.HasPrefix(name, "server/") {
			continue
		}
		if _, ok := sites[name]; !ok {
			t.Errorf("faultpoint %s has no chaos coverage in coreSites", name)
		}
	}
}
