package core_test

import (
	"context"

	"testing"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/moft"
	"mogis/internal/timedim"
)

// boundaryEngine builds an engine over a single-object table: O1 moves
// along y = 2 from (0,2) at t=0 to (4,2) at t=4.
func boundaryEngine(t *testing.T) *core.Engine {
	t.Helper()
	fm := moft.New("FMb")
	fm.Add(1, 0, 0, 2)
	fm.Add(1, 4, 4, 2)
	ctx := fo.NewContext(gis.NewDimension(nil)).AddTable(fm)
	return core.New(ctx)
}

// A trajectory tangent to the query disk grazes it at one instant.
// Under the unified closed-interval semantics the object is reported
// with duration 0 rather than silently dropped.
func TestBoundaryTangentWithinRadius(t *testing.T) {
	e := boundaryEngine(t)
	// Disk centered at (2,0) with r=2 is tangent to y=2 at (2,2),
	// reached exactly at t=2.
	center, r := geom.Pt(2, 0), 2.0

	out, err := e.ObjectsEverWithinRadius(context.Background(), "FMb", center, r, timedim.Interval{Lo: 0, Hi: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("tangent graze: got %v, want exactly O1", out)
	}
	if d := out[1]; d != 0 {
		t.Errorf("tangent graze duration = %v, want 0", d)
	}

	// A window whose upper bound is the graze instant still touches it.
	out, err = e.ObjectsEverWithinRadius(context.Background(), "FMb", center, r, timedim.Interval{Lo: 0, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("window ending at graze instant: got %v, want O1", out)
	}

	// A window strictly before the graze misses it.
	out, err = e.ObjectsEverWithinRadius(context.Background(), "FMb", center, r, timedim.Interval{Lo: 0, Hi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("window before graze: got %v, want empty", out)
	}
}

// TimeSpentInside and ObjectsEverWithinRadius now share one boundary
// rule: a trajectory whose region intervals touch the query window
// only at an endpoint is reported, with 0 accumulated time. (The old
// code used hi > lo for the polygon and hi >= lo for the radius
// variant, so the same graze appeared in one result and not the
// other.)
func TestBoundaryWindowTouchSymmetry(t *testing.T) {
	e := boundaryEngine(t)
	// O1 is inside the square [1,3]x[1,3] for t in [1,3], and within
	// r=1 of its center (2,2) for the same t in [1,3].
	pg := geom.Polygon{Shell: geom.Ring{geom.Pt(1, 1), geom.Pt(3, 1), geom.Pt(3, 3), geom.Pt(1, 3)}}
	center, r := geom.Pt(2, 2), 1.0

	// Window [0,1]: touches the entry instant t=1 exactly.
	win := timedim.Interval{Lo: 0, Hi: 1}
	spent, err := e.TimeSpentInside(context.Background(), "FMb", pg, win)
	if err != nil {
		t.Fatal(err)
	}
	within, err := e.ObjectsEverWithinRadius(context.Background(), "FMb", center, r, win)
	if err != nil {
		t.Fatal(err)
	}
	if len(spent) != 1 || spent[1] != 0 {
		t.Errorf("TimeSpentInside at window boundary = %v, want map[1:0]", spent)
	}
	if len(within) != 1 || within[1] != 0 {
		t.Errorf("ObjectsEverWithinRadius at window boundary = %v, want map[1:0]", within)
	}

	// ObjectsPassingThrough agrees on the same touch.
	oids, err := e.ObjectsPassingThrough(context.Background(), "FMb", pg, win)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 1 || oids[0] != 1 {
		t.Errorf("ObjectsPassingThrough at window boundary = %v, want [1]", oids)
	}

	// Window [4,8] lies strictly after the exit instant t=3; all
	// three queries agree on absence.
	after := timedim.Interval{Lo: 4, Hi: 8}
	spent, err = e.TimeSpentInside(context.Background(), "FMb", pg, after)
	if err != nil {
		t.Fatal(err)
	}
	within, err = e.ObjectsEverWithinRadius(context.Background(), "FMb", center, r, after)
	if err != nil {
		t.Fatal(err)
	}
	oids, err = e.ObjectsPassingThrough(context.Background(), "FMb", pg, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(spent) != 0 || len(within) != 0 || len(oids) != 0 {
		t.Errorf("window after exit: spent=%v within=%v oids=%v, want all empty", spent, within, oids)
	}

	// Interior window [1,3]: both report the same positive duration.
	mid := timedim.Interval{Lo: 1, Hi: 3}
	spent, err = e.TimeSpentInside(context.Background(), "FMb", pg, mid)
	if err != nil {
		t.Fatal(err)
	}
	within, err = e.ObjectsEverWithinRadius(context.Background(), "FMb", center, r, mid)
	if err != nil {
		t.Fatal(err)
	}
	if spent[1] != within[1] || spent[1] <= 0 {
		t.Errorf("interior window: spent=%v within=%v, want equal positive durations", spent[1], within[1])
	}
}
