package core_test

import (
	"context"

	"testing"

	"mogis/internal/fo"
	"mogis/internal/obs"
	"mogis/internal/scenario"
)

// TestResetCache exercises the litCache accounting: hit/miss counters,
// the size gauges, and reclaiming the memory with ResetCache.
func TestResetCache(t *testing.T) {
	s := sc(t)
	reg := obs.NewRegistry()
	met := obs.NewMetrics(reg)
	s.Engine.SetMetrics(met)
	defer s.Engine.SetMetrics(nil)

	if _, err := s.Engine.Trajectories(context.Background(), "FMbus"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Engine.Trajectories(context.Background(), "FMbus"); err != nil {
		t.Fatal(err)
	}
	if got := met.LitCacheMisses.Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := met.LitCacheHits.Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if tables, objects := s.Engine.CacheStats(); tables != 1 || objects != 6 {
		t.Errorf("CacheStats = (%d, %d), want (1, 6)", tables, objects)
	}
	if got := met.LitCacheTables.Value(); got != 1 {
		t.Errorf("tables gauge = %d, want 1", got)
	}
	if got := met.LitCacheObjects.Value(); got != 6 {
		t.Errorf("objects gauge = %d, want 6", got)
	}

	s.Engine.ResetCache()
	if tables, objects := s.Engine.CacheStats(); tables != 0 || objects != 0 {
		t.Errorf("CacheStats after reset = (%d, %d), want (0, 0)", tables, objects)
	}
	if got := met.LitCacheTables.Value(); got != 0 {
		t.Errorf("tables gauge after reset = %d, want 0", got)
	}
	if got := met.LitCacheObjects.Value(); got != 0 {
		t.Errorf("objects gauge after reset = %d, want 0", got)
	}

	// The next access repopulates the cache from scratch.
	if _, err := s.Engine.Trajectories(context.Background(), "FMbus"); err != nil {
		t.Fatal(err)
	}
	if got := met.LitCacheMisses.Value(); got != 2 {
		t.Errorf("misses after reset = %d, want 2", got)
	}
	if tables, objects := s.Engine.CacheStats(); tables != 1 || objects != 6 {
		t.Errorf("CacheStats after refill = (%d, %d), want (1, 6)", tables, objects)
	}
}

// TestType4SpanStages asserts the span tree a traced Type-4 query
// produces: plan, then FO evaluation, then aggregation, all under the
// query root.
func TestType4SpanStages(t *testing.T) {
	s := sc(t)
	tr := obs.NewTracer("query")
	s.Ctx.SetTracer(tr)
	n, err := s.Engine.CountRegion(context.Background(), s.MotivatingFormula(), []fo.Var{"o", "t"})
	s.Ctx.SetTracer(nil)
	root := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("|C| = %d, want 4 (Remark 1)", n)
	}
	stages := root.Stages()
	idx := map[string]int{}
	for i, name := range stages {
		if _, dup := idx[name]; !dup {
			idx[name] = i
		}
	}
	for _, want := range []string{"plan", "fo_eval", "aggregate_count"} {
		if root.Find(want) == nil {
			t.Errorf("missing span %q in %v", want, stages)
		}
	}
	if !(idx["plan"] < idx["fo_eval"] && idx["fo_eval"] < idx["aggregate_count"]) {
		t.Errorf("stage order = %v", stages)
	}
	if got := root.Find("fo_eval").Count("tuples"); got != 4 {
		t.Errorf("fo_eval tuples = %d, want 4", got)
	}
}

// BenchmarkRemark1 quantifies the tracing overhead on the motivating
// query; the disabled state is the production default.
func BenchmarkRemark1(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "tracing-off"
		if traced {
			name = "tracing-on"
		}
		b.Run(name, func(b *testing.B) {
			s := scenario.New()
			if _, err := s.MotivatingResult(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if traced {
					tr := obs.NewTracer("remark1")
					s.Ctx.SetTracer(tr)
					if _, err := s.MotivatingResult(); err != nil {
						b.Fatal(err)
					}
					s.Ctx.SetTracer(nil)
					tr.Finish()
				} else if _, err := s.MotivatingResult(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
