package core_test

import (
	"context"

	"sync"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

func eqOids(a, b []moft.Oid) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqDurations(a, b map[moft.Oid]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// TestConcurrentMixedQueries hammers one shared Engine from many
// goroutines with all five trajectory query types, interleaved with
// cache invalidations, and checks every answer against a serial
// (workers=1) engine. Run under -race this is the engine's
// thread-safety contract; the exact-equality comparisons are the
// determinism contract (parallel fan-out merges chunks in order, so
// results are byte-identical to serial).
func TestConcurrentMixedQueries(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 7, Cols: 4, Rows: 4})
	// 64 objects keeps the fan-out above the serial threshold.
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 11, Objects: 64, Samples: 40})
	lo, hi, _ := fm.TimeSpan()
	win := timedim.Interval{Lo: lo, Hi: hi}
	half := timedim.Interval{Lo: lo, Hi: lo + (hi-lo)/2}
	mid := lo + (hi-lo)/2

	pgSmall, ok := city.Ln.Polygon(1)
	if !ok {
		t.Fatal("city has no neighborhood polygon 1")
	}
	pgBig := city.Extent.AsPolygon()
	center := geom.Pt(
		city.Extent.MinX+city.Extent.Width()/2,
		city.Extent.MinY+city.Extent.Height()/2,
	)
	r := city.Extent.Width() / 4
	gids := []layer.Gid{1, 2, 3, 4}

	_, serial := city.Context(fm)
	serial.SetWorkers(1)
	wantPass, err := serial.ObjectsPassingThrough(context.Background(), "FM", pgSmall, win)
	if err != nil {
		t.Fatal(err)
	}
	wantSpent, err := serial.TimeSpentInside(context.Background(), "FM", pgSmall, win)
	if err != nil {
		t.Fatal(err)
	}
	wantWithin, err := serial.ObjectsEverWithinRadius(context.Background(), "FM", center, r, half)
	if err != nil {
		t.Fatal(err)
	}
	wantAt, err := serial.ObjectsInterpolatedAt(context.Background(), "FM", mid, pgBig)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := serial.CountPassingThroughGeometries(context.Background(), "FM", "Ln", gids, win)
	if err != nil {
		t.Fatal(err)
	}

	_, eng := city.Context(fm)
	// Force a 4-wide fan-out so the chunked parallel path runs even on
	// single-CPU machines (GOMAXPROCS would otherwise size it to 1).
	eng.SetWorkers(4)
	const goroutines, iters = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 7 {
				case 5:
					eng.InvalidateTrajectories("FM")
				case 6:
					eng.ResetCache()
				}
				pass, err := eng.ObjectsPassingThrough(context.Background(), "FM", pgSmall, win)
				if err != nil {
					t.Errorf("g%d i%d ObjectsPassingThrough: %v", g, i, err)
					return
				}
				if !eqOids(pass, wantPass) {
					t.Errorf("g%d i%d ObjectsPassingThrough = %v, want %v", g, i, pass, wantPass)
					return
				}
				spent, err := eng.TimeSpentInside(context.Background(), "FM", pgSmall, win)
				if err != nil {
					t.Errorf("g%d i%d TimeSpentInside: %v", g, i, err)
					return
				}
				if !eqDurations(spent, wantSpent) {
					t.Errorf("g%d i%d TimeSpentInside = %v, want %v", g, i, spent, wantSpent)
					return
				}
				within, err := eng.ObjectsEverWithinRadius(context.Background(), "FM", center, r, half)
				if err != nil {
					t.Errorf("g%d i%d ObjectsEverWithinRadius: %v", g, i, err)
					return
				}
				if !eqDurations(within, wantWithin) {
					t.Errorf("g%d i%d ObjectsEverWithinRadius = %v, want %v", g, i, within, wantWithin)
					return
				}
				at, err := eng.ObjectsInterpolatedAt(context.Background(), "FM", mid, pgBig)
				if err != nil {
					t.Errorf("g%d i%d ObjectsInterpolatedAt: %v", g, i, err)
					return
				}
				if !eqOids(at, wantAt) {
					t.Errorf("g%d i%d ObjectsInterpolatedAt = %v, want %v", g, i, at, wantAt)
					return
				}
				n, err := eng.CountPassingThroughGeometries(context.Background(), "FM", "Ln", gids, win)
				if err != nil {
					t.Errorf("g%d i%d CountPassingThroughGeometries: %v", g, i, err)
					return
				}
				if n != wantCount {
					t.Errorf("g%d i%d CountPassingThroughGeometries = %d, want %d", g, i, n, wantCount)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentSingleFlightBuild checks that 16 goroutines racing for
// an unbuilt table produce exactly one LIT build: the cache gauges
// count one table and one trajectory per object, never a multiple.
func TestConcurrentSingleFlightBuild(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 3, Cols: 2, Rows: 2})
	const objects = 40
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 5, Objects: objects, Samples: 10})
	_, eng := city.Context(fm)
	met := obs.NewMetrics(obs.NewRegistry())
	eng.SetMetrics(met)

	const racers = 16
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Trajectories(context.Background(), "FM"); err != nil {
				t.Errorf("Trajectories: %v", err)
			}
		}()
	}
	wg.Wait()

	if tables, objs := eng.CacheStats(); tables != 1 || objs != objects {
		t.Errorf("CacheStats = (%d, %d), want (1, %d)", tables, objs, objects)
	}
	if v := met.LitCacheTables.Value(); v != 1 {
		t.Errorf("LitCacheTables = %d, want 1 (double build?)", v)
	}
	if v := met.LitCacheObjects.Value(); v != objects {
		t.Errorf("LitCacheObjects = %d, want %d", v, objects)
	}
	if h, m := met.LitCacheHits.Value(), met.LitCacheMisses.Value(); m < 1 || h+m != racers {
		t.Errorf("hits=%d misses=%d, want misses >= 1 and hits+misses = %d", h, m, racers)
	}
}
