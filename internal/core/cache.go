package core

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"mogis/internal/agggrid"
	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/sindex"
	"mogis/internal/traj"
)

// This file implements the engine's per-table cache hierarchy and the
// worker pool behind the trajectory query hot path. Three caches hang
// off each fact table, built single-flight and dropped whole on
// invalidation:
//
//  1. the LIT cache — every object's interpolated trajectory,
//  2. the spatial prefilter — an STR-packed R-tree over trajectory
//     bounding boxes, so a polygon or radius query only evaluates
//     objects whose envelope can intersect the query region,
//  3. the interval cache — memoized per-(table, polygon)
//     InsidePolygonIntervals results (the GeoBlocks-style
//     query-result cache), keyed by an exact fingerprint of the
//     polygon's coordinates and evicted least-recently-used at the
//     configured cap,
//  4. the pre-aggregated sample grid (internal/agggrid) — built
//     independently of the LIT build (sample-only queries never pay
//     for interpolation) from the table's columnar snapshot.
//
// Invalidation rules: InvalidateTrajectories(table) and ResetCache
// drop all four for the affected tables. A query racing an
// invalidation may still be answered from the generation it started
// on; the next query sees fresh data.

// serialThreshold is the object count below which the per-object
// fan-out stays on the calling goroutine: goroutine startup dwarfs
// the per-object work for small tables (the paper's six-bus example
// always runs serial).
const serialThreshold = 32

// defaultIntervalCacheCap bounds the memoized polygons per table.
const defaultIntervalCacheCap = 256

// tableCache is the per-table cache unit. lits, oids and tree are
// written once inside the sync.Once build and read-only afterwards;
// the interval cache mutates under imu; the sample grid builds
// single-flight under its own Once so sample-only queries never
// trigger trajectory interpolation.
type tableCache struct {
	once  sync.Once
	built chan struct{} // closed when the build finished (ok or not)

	lits map[moft.Oid]*traj.LIT
	oids []moft.Oid // sorted; the deterministic fan-out order
	tree *sindex.RTree
	err  error

	gridOnce sync.Once
	grid     *agggrid.Grid
	gridErr  error

	imu       sync.Mutex
	dead      bool // set on invalidation; stops new interval-cache inserts
	intervals map[string]*list.Element
	ivOrder   list.List // LRU order: front oldest, back most recent
}

// intervalEntry is one memoized (polygon → per-object intervals) set,
// stored as the value of its LRU list element.
type intervalEntry struct {
	key string
	m   map[moft.Oid][]traj.TimeInterval
}

// isBuilt reports whether the build completed (successfully or not)
// without blocking.
func (tc *tableCache) isBuilt() bool {
	select {
	case <-tc.built:
		return true
	default:
		return false
	}
}

// build interpolates every object of the table and packs the
// trajectory bounding boxes into the prefilter R-tree.
func (tc *tableCache) build(e *Engine, table string) {
	defer close(tc.built)
	tbl, err := e.ctx.Table(table)
	if err != nil {
		tc.err = err
		return
	}
	sp := e.ctx.Tracer().Start("interpolate")
	defer sp.End()
	// Interpolate from the columnar snapshot: per-object samples come
	// from contiguous ranges of the flat T/X/Y arrays instead of
	// walking Tuple structs.
	cols := tbl.Columns()
	oids := make([]moft.Oid, len(cols.Oids))
	copy(oids, cols.Oids)
	lits := make(map[moft.Oid]*traj.LIT, len(oids))
	entries := make([]sindex.Entry, 0, len(oids))
	for i, oid := range oids {
		lo, hi := cols.ObjectRange(i)
		s := traj.SampleFromColumns(cols.T[lo:hi], cols.X[lo:hi], cols.Y[lo:hi])
		l, err := traj.NewLIT(s)
		if err != nil {
			tc.err = fmt.Errorf("core: object O%d: %w", oid, err)
			return
		}
		lits[oid] = l
		entries = append(entries, sindex.Entry{Box: sindex.Box(l.BBox()), ID: int64(oid)})
	}
	sp.SetCount("objects", int64(len(lits)))
	sp.SetCount("samples", int64(cols.Len()))
	tc.lits = lits
	tc.oids = oids
	tc.tree = sindex.BulkLoad(entries, sindex.DefaultFanout)
}

// aggGrid returns the table's pre-aggregated sample grid, building it
// single-flight from the columnar snapshot on first use. Independent
// of the LIT build: sample-only queries pay only for the grid.
func (tc *tableCache) aggGrid(e *Engine, table string) (*agggrid.Grid, error) {
	tc.gridOnce.Do(func() {
		tbl, err := e.ctx.Table(table)
		if err != nil {
			tc.gridErr = err
			return
		}
		sp := e.ctx.Tracer().Start("agggrid_build")
		defer sp.End()
		cols := tbl.Columns()
		n := int(e.gridCells.Load())
		tc.grid = agggrid.Build(cols, agggrid.Config{NX: n, NY: n})
		sp.SetCount("cells", int64(tc.grid.Cells()))
		sp.SetCount("samples", int64(cols.Len()))
		e.metrics().AggGridBuilds.Inc()
	})
	return tc.grid, tc.gridErr
}

// candidates returns, in sorted oid order, the objects whose
// trajectory bounding box intersects box — the spatial prefilter —
// and records the candidate/skip split in the engine metrics.
//
//moglint:deterministic
func (tc *tableCache) candidates(met *obs.Metrics, box geom.BBox) []moft.Oid {
	ids := tc.tree.Search(box, nil)
	out := make([]moft.Oid, len(ids))
	for i, id := range ids {
		out[i] = moft.Oid(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	met.PrefilterCandidates.Add(int64(len(out)))
	met.PrefilterSkipped.Add(int64(len(tc.oids) - len(out)))
	return out
}

// drainIntervals empties the interval cache (on invalidation) and
// keeps the entries gauge consistent.
func (tc *tableCache) drainIntervals(met *obs.Metrics) {
	tc.imu.Lock()
	n := len(tc.intervals)
	tc.dead = true
	tc.intervals = nil
	tc.ivOrder.Init()
	tc.imu.Unlock()
	met.IntervalCacheEntries.Add(-int64(n))
}

// polygonKey is an exact fingerprint of a polygon's coordinates: the
// raw float64 bits of every vertex, rings separated by a NaN marker
// (no finite coordinate collides with it). Two polygons share a key
// iff they are vertex-identical, so cache hits are never wrong.
func polygonKey(pg geom.Polygon) string {
	n := len(pg.Shell)
	for _, h := range pg.Holes {
		n += len(h) + 1
	}
	buf := make([]byte, 0, 16*n)
	var tmp [8]byte
	put := func(f float64) {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
		buf = append(buf, tmp[:]...)
	}
	for _, p := range pg.Shell {
		put(p.X)
		put(p.Y)
	}
	for _, h := range pg.Holes {
		put(math.NaN())
		for _, p := range h {
			put(p.X)
			put(p.Y)
		}
	}
	return string(buf)
}

// polygonIntervals returns, for every object that can intersect pg,
// the merged time intervals its interpolated trajectory spends inside
// pg over its whole time domain (unclamped — callers clamp to their
// query window, which keeps the cache window-independent). The result
// map is shared with the cache; callers must not mutate it. Absent
// objects spend no time inside.
//
//moglint:deterministic
func (e *Engine) polygonIntervals(tc *tableCache, pg geom.Polygon) map[moft.Oid][]traj.TimeInterval {
	met := e.metrics()
	cacheCap := e.intervalCacheCap()
	var key string
	if cacheCap > 0 {
		key = polygonKey(pg)
		tc.imu.Lock()
		if el, ok := tc.intervals[key]; ok {
			tc.ivOrder.MoveToBack(el) // most recently used
			m := el.Value.(*intervalEntry).m
			tc.imu.Unlock()
			met.IntervalCacheHits.Inc()
			return m
		}
		tc.imu.Unlock()
		met.IntervalCacheMisses.Inc()
	}

	cand := tc.candidates(met, pg.BBox())
	workers := e.workerCount(len(cand))
	parts := make([]map[moft.Oid][]traj.TimeInterval, workers)
	forChunks(workers, len(cand), func(chunk, lo, hi int) {
		m := make(map[moft.Oid][]traj.TimeInterval)
		for _, oid := range cand[lo:hi] {
			if ivs := tc.lits[oid].InsidePolygonIntervals(pg); len(ivs) > 0 {
				m[oid] = ivs
			}
		}
		parts[chunk] = m
	})
	out := parts[0]
	for _, m := range parts[1:] {
		for oid, ivs := range m {
			out[oid] = ivs
		}
	}

	if cacheCap > 0 {
		tc.imu.Lock()
		if !tc.dead {
			if tc.intervals == nil {
				tc.intervals = make(map[string]*list.Element)
			}
			if _, dup := tc.intervals[key]; !dup {
				// Evict least-recently-used entries until the new one
				// fits within the cap.
				for len(tc.intervals) >= cacheCap {
					oldest := tc.ivOrder.Front()
					delete(tc.intervals, oldest.Value.(*intervalEntry).key)
					tc.ivOrder.Remove(oldest)
					met.IntervalCacheEvictions.Inc()
					met.IntervalCacheEntries.Add(-1)
				}
				tc.intervals[key] = tc.ivOrder.PushBack(&intervalEntry{key: key, m: out})
				met.IntervalCacheEntries.Add(1)
			}
		}
		tc.imu.Unlock()
	}
	return out
}

// workerCount sizes the pool for a fan-out over n objects: the
// engine's configured width (GOMAXPROCS when unset), clamped to n,
// and 1 below the serial threshold.
func (e *Engine) workerCount(n int) int {
	if n < serialThreshold {
		return 1
	}
	w := int(e.workers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forChunks splits [0, n) into one contiguous chunk per worker and
// runs fn(chunk, lo, hi) concurrently. Chunk indices let callers
// merge per-chunk results in a deterministic order regardless of
// goroutine scheduling; workers <= 1 runs inline.
//
//moglint:deterministic
func forChunks(workers, n int, fn func(chunk, lo, hi int)) {
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		lo := c * n / workers
		hi := (c + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			fn(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
}
