package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mogis/internal/agggrid"
	"mogis/internal/faultpoint"
	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/qerr"
	"mogis/internal/sindex"
	"mogis/internal/traj"
)

// This file implements the engine's per-table cache hierarchy and the
// worker pool behind the trajectory query hot path. Three caches hang
// off each fact table, built single-flight and dropped whole on
// invalidation:
//
//  1. the LIT cache — every object's interpolated trajectory,
//  2. the spatial prefilter — an STR-packed R-tree over trajectory
//     bounding boxes, so a polygon or radius query only evaluates
//     objects whose envelope can intersect the query region,
//  3. the interval cache — memoized per-(table, polygon)
//     InsidePolygonIntervals results (the GeoBlocks-style
//     query-result cache), keyed by an exact fingerprint of the
//     polygon's coordinates and evicted least-recently-used at the
//     configured cap,
//  4. the pre-aggregated sample grid (internal/agggrid) — built
//     independently of the LIT build (sample-only queries never pay
//     for interpolation) from the table's columnar snapshot.
//
// Builds are cancellable: each cache unit is a buildUnit (a resettable
// single-flight latch) whose builder runs under the triggering query's
// context. A build abandoned by cancel, deadline, budget or an
// injected fault publishes nothing and resets the unit, so the next
// caller retries from scratch; waiters whose own context dies stop
// waiting without affecting the in-flight build.
//
// Invalidation rules: InvalidateTrajectories(table) and ResetCache
// drop all four for the affected tables. A query racing an
// invalidation may still be answered from the generation it started
// on; the next query sees fresh data.

// serialThreshold is the object count below which the per-object
// fan-out stays on the calling goroutine: goroutine startup dwarfs
// the per-object work for small tables (the paper's six-bus example
// always runs serial).
const serialThreshold = 32

// defaultIntervalCacheCap bounds the memoized polygons per table.
const defaultIntervalCacheCap = 256

// buildUnit is a resettable single-flight latch: the first caller
// becomes the builder and runs fn; concurrent callers wait on the
// in-flight channel. A successful build latches permanently; any
// failure (cancel, deadline, budget, error, recovered panic) leaves
// the unit exactly as-if-never-started so the next caller retries.
// It replaces sync.Once, whose one-shot semantics would poison the
// cache after an abandoned build.
type buildUnit struct {
	mu       sync.Mutex
	done     bool
	inflight chan struct{} // non-nil while a build runs; closed when it ends
}

// run returns immediately when the unit is built; otherwise it joins
// the in-flight build or becomes the builder. builtNow reports that
// this caller executed fn successfully (the gauge-update trigger). A
// waiter whose ctx dies returns ctx.Err() without killing the build;
// when a build it waited on is abandoned, it retries as the builder.
func (u *buildUnit) run(ctx context.Context, op string, fn func() error) (builtNow bool, err error) {
	for {
		u.mu.Lock()
		if u.done {
			u.mu.Unlock()
			return false, nil
		}
		if ch := u.inflight; ch != nil {
			u.mu.Unlock()
			select {
			case <-ch:
				continue // build ended: latched, or reset for retry
			case <-ctx.Done():
				return false, ctx.Err()
			}
		}
		ch := make(chan struct{})
		u.inflight = ch
		u.mu.Unlock()

		err = runProtected(op, fn)
		u.mu.Lock()
		u.inflight = nil
		u.done = err == nil
		u.mu.Unlock()
		close(ch)
		return err == nil, err
	}
}

// ok reports whether the unit has latched a successful build.
func (u *buildUnit) ok() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.done
}

// runProtected runs fn with panic isolation: a panic becomes a
// *qerr.QueryPanicError carrying the stack, so one poisoned build
// cannot take the process down or wedge its waiters.
func runProtected(op string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = qerr.NewPanic(op, v)
		}
	}()
	return fn()
}

// tableCache is the per-table cache unit. lits, oids and tree are
// written by the lit buildUnit's builder before the unit latches and
// read-only afterwards; the interval cache mutates under imu; the
// sample grid builds under its own buildUnit so sample-only queries
// never trigger trajectory interpolation.
type tableCache struct {
	lit  buildUnit
	lits map[moft.Oid]*traj.LIT
	oids []moft.Oid // sorted; the deterministic fan-out order
	tree *sindex.RTree

	gridUnit buildUnit
	grid     *agggrid.Grid

	imu       sync.RWMutex
	dead      bool // set on invalidation; stops new interval-cache inserts
	intervals map[string]*intervalEntry
	// ivGen issues strictly increasing recency stamps. A hit only takes
	// the read lock and bumps its entry's stamp — no recency-list splice
	// under an exclusive lock — so read-mostly workloads don't
	// serialize; the insert path orders entries lazily, scanning for
	// the minimum stamp when it must evict.
	ivGen atomic.Int64
}

// intervalEntry is one memoized (polygon → per-object intervals) set.
// stamp is its recency: stamps are unique and monotonic (ivGen), so
// min-stamp eviction reproduces exact LRU order.
type intervalEntry struct {
	key   string
	m     map[moft.Oid][]traj.TimeInterval
	stamp atomic.Int64
}

// build interpolates every object of the table and packs the
// trajectory bounding boxes into the prefilter R-tree. It publishes
// to tc only at the very end, so an abandoned build (cancel, budget,
// fault) leaves no partial state behind.
func (tc *tableCache) build(ctx context.Context, e *Engine, table string) error {
	if err := faultpoint.Hit(faultpoint.CoreLITBuild); err != nil {
		return err
	}
	tbl, err := e.mctx.Table(table)
	if err != nil {
		return err
	}
	sp := e.mctx.Tracer().Start("interpolate")
	defer sp.End()
	// Interpolate from the columnar snapshot: per-object samples come
	// from contiguous ranges of the flat T/X/Y arrays instead of
	// walking Tuple structs.
	cols, err := tbl.ColumnsCtx(ctx)
	if err != nil {
		return err
	}
	oids := make([]moft.Oid, len(cols.Oids))
	copy(oids, cols.Oids)
	lits := make(map[moft.Oid]*traj.LIT, len(oids))
	entries := make([]sindex.Entry, 0, len(oids))
	for i, oid := range oids {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		lo, hi := cols.ObjectRange(i)
		s := traj.SampleFromColumns(cols.T[lo:hi], cols.X[lo:hi], cols.Y[lo:hi])
		l, err := traj.NewLIT(s)
		if err != nil {
			return fmt.Errorf("core: object O%d: %w", oid, err)
		}
		lits[oid] = l
		entries = append(entries, sindex.Entry{Box: sindex.Box(l.BBox()), ID: int64(oid)})
	}
	sp.SetCount("objects", int64(len(lits)))
	sp.SetCount("samples", int64(cols.Len()))
	tc.lits = lits
	tc.oids = oids
	tc.tree = sindex.BulkLoad(entries, sindex.DefaultFanout)
	return nil
}

// aggGrid returns the table's pre-aggregated sample grid, building it
// single-flight from the columnar snapshot on first use. Independent
// of the LIT build: sample-only queries pay only for the grid.
func (tc *tableCache) aggGrid(ctx context.Context, e *Engine, table string) (*agggrid.Grid, error) {
	_, err := tc.gridUnit.run(ctx, "core/grid-build", func() error {
		if err := faultpoint.Hit(faultpoint.CoreGridBuild); err != nil {
			return err
		}
		tbl, err := e.mctx.Table(table)
		if err != nil {
			return err
		}
		sp := e.mctx.Tracer().Start("agggrid_build")
		defer sp.End()
		cols, err := tbl.ColumnsCtx(ctx)
		if err != nil {
			return err
		}
		n := int(e.gridCells.Load())
		cfg := agggrid.Config{NX: n, NY: n, TimeBuckets: int(e.timeBuckets.Load())}
		if cfg.TimeBuckets == 0 {
			// Adaptive bucket sizing consults the observed query
			// windows of the interval-taking grid ops (GeoBlocks-style
			// query-driven refinement); with no telemetry or no
			// windowed queries yet, the hint stays 0 and sizing falls
			// back to extent + density.
			cfg.WindowHint = e.telemetry().MeanWindow(
				"count_samples_inside", "objects_sampled_inside")
		}
		g, err := agggrid.BuildCtx(ctx, cols, cfg)
		if err != nil {
			return err
		}
		tc.grid = g
		sp.SetCount("cells", int64(g.Cells()))
		sp.SetCount("samples", int64(cols.Len()))
		sp.SetCount("time_buckets", int64(g.TimeBuckets()))
		e.metrics().AggGridBuilds.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tc.grid, nil
}

// candidates returns, in sorted oid order, the objects whose
// trajectory bounding box intersects box — the spatial prefilter —
// and records the candidate/skip split in the engine metrics.
//
//moglint:deterministic
func (tc *tableCache) candidates(ctx context.Context, met *obs.Metrics, box geom.BBox) ([]moft.Oid, error) {
	if err := faultpoint.Hit(faultpoint.CorePrefilter); err != nil {
		return nil, err
	}
	ids, err := tc.tree.SearchCtx(ctx, box, nil)
	if err != nil {
		return nil, err
	}
	out := make([]moft.Oid, len(ids))
	for i, id := range ids {
		out[i] = moft.Oid(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	met.PrefilterCandidates.Add(int64(len(out)))
	met.PrefilterSkipped.Add(int64(len(tc.oids) - len(out)))
	return out, nil
}

// drainIntervals empties the interval cache (on invalidation) and
// keeps the entries gauge consistent.
func (tc *tableCache) drainIntervals(met *obs.Metrics) {
	tc.imu.Lock()
	n := len(tc.intervals)
	tc.dead = true
	tc.intervals = nil
	tc.imu.Unlock()
	met.IntervalCacheEntries.Add(-int64(n))
}

// polygonKey is an exact fingerprint of a polygon's coordinates: the
// raw float64 bits of every vertex, rings separated by a NaN marker
// (no finite coordinate collides with it). Two polygons share a key
// iff they are vertex-identical, so cache hits are never wrong.
func polygonKey(pg geom.Polygon) string {
	n := len(pg.Shell)
	for _, h := range pg.Holes {
		n += len(h) + 1
	}
	buf := make([]byte, 0, 16*n)
	var tmp [8]byte
	put := func(f float64) {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
		buf = append(buf, tmp[:]...)
	}
	for _, p := range pg.Shell {
		put(p.X)
		put(p.Y)
	}
	for _, h := range pg.Holes {
		put(math.NaN())
		for _, p := range h {
			put(p.X)
			put(p.Y)
		}
	}
	return string(buf)
}

// polygonIntervals returns, for every object that can intersect pg,
// the merged time intervals its interpolated trajectory spends inside
// pg over its whole time domain (unclamped — callers clamp to their
// query window, which keeps the cache window-independent). The result
// map is shared with the cache; callers must not mutate it. Absent
// objects spend no time inside. An aborted computation (cancel,
// budget, fault) is never inserted into the cache.
//
//moglint:deterministic
func (e *Engine) polygonIntervals(ctx context.Context, qc *qctl, tc *tableCache, pg geom.Polygon) (map[moft.Oid][]traj.TimeInterval, error) {
	met := e.metrics()
	cacheCap := e.intervalCacheCap()
	var key string
	if cacheCap > 0 {
		key = polygonKey(pg)
		tc.imu.RLock()
		if en, ok := tc.intervals[key]; ok {
			en.stamp.Store(tc.ivGen.Add(1)) // most recently used
			m := en.m
			tc.imu.RUnlock()
			met.IntervalCacheHits.Inc()
			qc.cacheHit(true)
			return m, nil
		}
		tc.imu.RUnlock()
		met.IntervalCacheMisses.Inc()
		qc.cacheHit(false)
	}

	cand, err := tc.candidates(ctx, met, pg.BBox())
	if err != nil {
		return nil, err
	}
	workers := e.workerCount(len(cand))
	parts := make([]map[moft.Oid][]traj.TimeInterval, workers)
	err = forChunks(ctx, workers, len(cand), func(chunk, lo, hi int) error {
		m := make(map[moft.Oid][]traj.TimeInterval)
		rows, results := int64(0), int64(0)
		for _, oid := range cand[lo:hi] {
			l := tc.lits[oid]
			if rows += int64(len(l.Sample())); rows >= checkEvery {
				if err := qc.addRows(ctx, rows); err != nil {
					return err
				}
				rows = 0
			}
			if ivs := l.InsidePolygonIntervals(pg); len(ivs) > 0 {
				m[oid] = ivs
				results += int64(len(ivs))
			}
		}
		parts[chunk] = m
		if err := qc.addRows(ctx, rows); err != nil {
			return err
		}
		return qc.addResults(results)
	})
	if err != nil {
		return nil, err
	}
	out := parts[0]
	if out == nil {
		out = make(map[moft.Oid][]traj.TimeInterval)
	}
	merged := 0
	for _, m := range parts[1:] {
		for oid, ivs := range m {
			if merged%checkEvery == 0 {
				if err := qc.step(ctx); err != nil {
					return nil, err
				}
			}
			merged++
			out[oid] = ivs
		}
	}

	if cacheCap > 0 {
		if err := faultpoint.Hit(faultpoint.CoreIntervalInsert); err != nil {
			return nil, err
		}
		tc.imu.Lock()
		if !tc.dead {
			if tc.intervals == nil {
				tc.intervals = make(map[string]*intervalEntry)
			}
			if _, dup := tc.intervals[key]; !dup {
				// Evict least-recently-used entries until the new one
				// fits within the cap: the minimum stamp is the LRU
				// entry (stamps are unique, so there are no ties).
				for len(tc.intervals) >= cacheCap {
					var oldest *intervalEntry
					for _, en := range tc.intervals {
						if oldest == nil || en.stamp.Load() < oldest.stamp.Load() {
							oldest = en
						}
					}
					delete(tc.intervals, oldest.key)
					met.IntervalCacheEvictions.Inc()
					met.IntervalCacheEntries.Add(-1)
				}
				en := &intervalEntry{key: key, m: out}
				en.stamp.Store(tc.ivGen.Add(1))
				tc.intervals[key] = en
				met.IntervalCacheEntries.Add(1)
			}
		}
		tc.imu.Unlock()
	}
	return out, nil
}

// workerCount sizes the pool for a fan-out over n objects: the
// engine's configured width (GOMAXPROCS when unset), clamped to n,
// and 1 below the serial threshold.
func (e *Engine) workerCount(n int) int {
	if n < serialThreshold {
		return 1
	}
	w := int(e.workers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forChunks splits [0, n) into one contiguous chunk per worker and
// runs fn(chunk, lo, hi) concurrently. Chunk indices let callers
// merge per-chunk results in a deterministic order regardless of
// goroutine scheduling; workers <= 1 runs inline. Every worker is
// panic-isolated (a panic becomes a *qerr.QueryPanicError) and checks
// ctx before starting; all workers drain before the first error — in
// chunk order, so the reported error is scheduling-independent — is
// returned.
//
//moglint:deterministic
func forChunks(ctx context.Context, workers, n int, fn func(chunk, lo, hi int) error) error {
	if workers <= 1 {
		return runChunk(0, 0, n, fn)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		lo := c * n / workers
		hi := (c + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[c] = err
				return
			}
			errs[c] = runChunk(c, lo, hi, fn)
		}(c, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runChunk executes one worker chunk with panic isolation and the
// fan-out faultpoint.
func runChunk(c, lo, hi int, fn func(chunk, lo, hi int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = qerr.NewPanic("core/fanout", v)
		}
	}()
	if err := faultpoint.Hit(faultpoint.CoreFanoutChunk); err != nil {
		return err
	}
	return fn(c, lo, hi)
}
