package core_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mogis/internal/core"
	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/timedim"
)

// randomQueryPolygon draws a convex polygon around a center point, the
// region half of the fuzzed region×interval queries.
func randomQueryPolygon(rng *rand.Rand, center geom.Point, radius float64) geom.Polygon {
	n := 3 + rng.Intn(5)
	pts := make([]geom.Point, n)
	for i := range pts {
		r := radius * (0.2 + rng.Float64())
		pts[i] = geom.Pt(center.X+(rng.Float64()*2-1)*r, center.Y+(rng.Float64()*2-1)*r)
	}
	cx, cy := 0.0, 0.0
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(n)
	cy /= float64(n)
	sort.Slice(pts, func(i, j int) bool {
		return math.Atan2(pts[i].Y-cy, pts[i].X-cx) < math.Atan2(pts[j].Y-cy, pts[j].X-cx)
	})
	return geom.Polygon{Shell: geom.Ring(pts)}
}

// randomQueryWindow draws the interval half: narrow windows, instants,
// vacuous spans, and windows hanging off either end of the extent.
func randomQueryWindow(rng *rand.Rand, lo, hi timedim.Instant) timedim.Interval {
	span := int64(hi - lo)
	switch rng.Intn(8) {
	case 0:
		t := lo + timedim.Instant(rng.Int63n(span+1))
		return timedim.Interval{Lo: t, Hi: t}
	case 1:
		return timedim.Interval{Lo: lo - 100, Hi: hi + 100}
	case 2:
		return timedim.Interval{Lo: hi + 1, Hi: hi + 500}
	default:
		a := int64(lo) + rng.Int63n(span+1)
		b := a + rng.Int63n(span/4+1)
		return timedim.Interval{Lo: timedim.Instant(a), Hi: timedim.Instant(b)}
	}
}

// TestTemporalShardedFuzz fuzzes region×interval queries through the
// engine across time-bucket configs (forced 1/16/256, adaptive,
// disabled) and shard counts (1/2/3): every CountSamplesInside /
// ObjectsSampledInside / ObjectsPassingThrough answer must be
// reflect.DeepEqual to the unsharded scan-path oracle.
func TestTemporalShardedFuzz(t *testing.T) {
	w, fm := newShardedFixture(t, 21)
	lo, hi, _ := fm.TimeSpan()
	rng := rand.New(rand.NewSource(33))

	type query struct {
		pg geom.Polygon
		iv timedim.Interval
	}
	queries := make([]query, 12)
	for i := range queries {
		queries[i] = query{
			pg: randomQueryPolygon(rng, w.center, w.radius*2),
			iv: randomQueryWindow(rng, lo, hi),
		}
	}
	type answer struct {
		count   int
		sampled []moft.Oid
		passing []moft.Oid
	}
	run := func(q core.Querier) ([]answer, error) {
		out := make([]answer, len(queries))
		for i, qq := range queries {
			n, err := q.CountSamplesInside(context.Background(), "FM", qq.pg, qq.iv)
			if err != nil {
				return nil, err
			}
			s, err := q.ObjectsSampledInside(context.Background(), "FM", qq.pg, qq.iv)
			if err != nil {
				return nil, err
			}
			p, err := q.ObjectsPassingThrough(context.Background(), "FM", qq.pg, qq.iv)
			if err != nil {
				return nil, err
			}
			out[i] = answer{count: n, sampled: s, passing: p}
		}
		return out, nil
	}

	w.eng.SetAggGrid(-1)
	w.eng.ResetCache()
	oracle, err := run(w.eng)
	if err != nil {
		t.Fatalf("oracle sweep: %v", err)
	}
	w.eng.SetAggGrid(0)

	for _, buckets := range []int{1, 16, 256, 0, -1} {
		w.eng.SetTimeBuckets(buckets)
		w.eng.ResetCache()
		got, err := run(w.eng)
		if err != nil {
			t.Fatalf("buckets %d unsharded: %v", buckets, err)
		}
		if !reflect.DeepEqual(got, oracle) {
			t.Errorf("buckets %d unsharded diverged from scan oracle", buckets)
		}
		for _, shards := range []int{1, 2, 3} {
			se := core.NewSharded(w.eng.Context(), shards)
			se.SetMetrics(w.met)
			se.SetAggGrid(0)
			se.SetTimeBuckets(buckets)
			got, err := run(se)
			if err != nil {
				t.Fatalf("buckets %d shards %d: %v", buckets, shards, err)
			}
			if !reflect.DeepEqual(got, oracle) {
				t.Errorf("buckets %d shards %d diverged from scan oracle", buckets, shards)
			}
		}
	}
	w.eng.SetTimeBuckets(0)
	w.eng.ResetCache()
}

// TestTemporalVerifyMode runs the fuzz shapes under SetGridVerify: the
// bit-identity gate must hold on the temporal-index paths (zero
// AggGridMismatches) while the index is demonstrably used.
func TestTemporalVerifyMode(t *testing.T) {
	w, fm := newShardedFixture(t, 55)
	lo, hi, _ := fm.TimeSpan()
	rng := rand.New(rand.NewSource(56))
	w.eng.SetGridVerify(true)
	defer w.eng.SetGridVerify(false)
	for i := 0; i < 20; i++ {
		pg := randomQueryPolygon(rng, w.center, w.radius*2)
		iv := randomQueryWindow(rng, lo, hi)
		if _, err := w.eng.CountSamplesInside(context.Background(), "FM", pg, iv); err != nil {
			t.Fatalf("CountSamplesInside: %v", err)
		}
		if _, err := w.eng.ObjectsSampledInside(context.Background(), "FM", pg, iv); err != nil {
			t.Fatalf("ObjectsSampledInside: %v", err)
		}
		if _, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", pg, iv); err != nil {
			t.Fatalf("ObjectsPassingThrough: %v", err)
		}
	}
	if n := w.met.AggGridMismatches.Value(); n != 0 {
		t.Fatalf("verify mode found %d grid/scan mismatches", n)
	}
	if w.met.AggGridTemporalQueries.Value() == 0 {
		t.Fatal("temporal index never engaged during the verify sweep")
	}
}

// TestTemporalPrefilterPassingThrough checks the ObjectsPassingThrough
// time prefilter: an interval disjoint from the table's sample extent
// answers empty without building trajectories, counts an
// AggGridTimeSkips, and verify mode agrees with the full path.
func TestTemporalPrefilterPassingThrough(t *testing.T) {
	w, fm := newShardedFixture(t, 77)
	_, hi, _ := fm.TimeSpan()
	off := timedim.Interval{Lo: hi + 100, Hi: hi + 200}

	before := w.met.AggGridTimeSkips.Value()
	got, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, off)
	if err != nil {
		t.Fatalf("ObjectsPassingThrough: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("off-extent window returned %v", got)
	}
	if d := w.met.AggGridTimeSkips.Value() - before; d != 1 {
		t.Errorf("AggGridTimeSkips delta = %d, want 1", d)
	}

	// Verify mode still runs the full path and must agree.
	w.eng.SetGridVerify(true)
	got, err = w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, off)
	w.eng.SetGridVerify(false)
	if err != nil {
		t.Fatalf("verify ObjectsPassingThrough: %v", err)
	}
	if len(got) != 0 || w.met.AggGridMismatches.Value() != 0 {
		t.Fatalf("verify mode diverged: got %v, mismatches %d", got, w.met.AggGridMismatches.Value())
	}

	// With the grid disabled the prefilter must stand down and the
	// full path still answer identically.
	w.eng.SetAggGrid(-1)
	before = w.met.AggGridTimeSkips.Value()
	got, err = w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, off)
	w.eng.SetAggGrid(0)
	if err != nil {
		t.Fatalf("scan ObjectsPassingThrough: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("scan path off-extent window returned %v", got)
	}
	if d := w.met.AggGridTimeSkips.Value() - before; d != 0 {
		t.Errorf("prefilter engaged with the grid disabled (delta %d)", d)
	}
}

// TestShardedSetTimeBucketsFanOut: the coordinator knob must reach the
// global engine and every shard — after disabling the index fleet-wide,
// no shard answers through it; after re-enabling, they do.
func TestShardedSetTimeBucketsFanOut(t *testing.T) {
	w, fm := newShardedFixture(t, 91)
	lo, hi, _ := fm.TimeSpan()
	narrow := timedim.Interval{Lo: lo + (hi-lo)/3, Hi: lo + (hi-lo)/2}
	se := core.NewSharded(w.eng.Context(), 3)
	met := obs.NewMetrics(obs.NewRegistry())
	se.SetMetrics(met)

	se.SetTimeBuckets(-1)
	if _, err := se.CountSamplesInside(context.Background(), "FM", w.pg, narrow); err != nil {
		t.Fatal(err)
	}
	if n := met.AggGridTemporalQueries.Value(); n != 0 {
		t.Fatalf("temporal index answered %d queries after SetTimeBuckets(-1) fan-out", n)
	}

	se.SetTimeBuckets(0)
	se.ResetCache()
	if _, err := se.CountSamplesInside(context.Background(), "FM", w.pg, narrow); err != nil {
		t.Fatal(err)
	}
	if met.AggGridTemporalQueries.Value() == 0 {
		t.Fatal("temporal index never engaged after re-enabling fleet-wide")
	}
}
