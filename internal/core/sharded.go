package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mogis/internal/faultpoint"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/qerr"
	"mogis/internal/telemetry"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

// ShardedEngine partitions each registered MOFT by object-id hash into
// N shard engines — each owning its own columnar snapshot, LIT cache,
// interval cache and pre-aggregated grid — and scatters the per-object
// query entry points across them, merging the per-shard answers in a
// deterministic order. Because the partition function assigns every
// object to exactly one shard and every per-object entry point returns
// its objects in ascending oid order, a sorted merge of the disjoint
// shard answers is bit-identical to the single-engine answer.
//
// Entry points that are not per-object — the formula evaluator
// (RegionC and its aggregations, whose first-order semantics admit
// negation and universal quantification over the whole table) and the
// pure-GIS aggregations — route to an internal unsharded engine over
// the original context instead; TrajectoryAggregate routes to the one
// shard owning its object.
//
// The coordinator rides the engine's existing control plane: one
// begin/done bracket per logical query (one telemetry QueryRecord,
// one per-type counter bump), budgets enforced against the logical
// query's shared atomic counters rather than per shard, cancellation
// fanned out to every shard with the first typed error cancelling its
// siblings, and panic isolation per shard.
type ShardedEngine struct {
	// mctx is the original, full model context; partition sources and
	// routed queries read it.
	mctx *fo.Context
	// global runs the routed (formula / GIS) entry points over the full
	// tables and owns the coordinator-side query brackets.
	global *Engine
	// shards run the scattered entry points, each over a derived
	// context holding its partition of every queried table.
	shards []*Engine

	// confWorkers remembers the configured fan-out width so the
	// per-shard split can be re-derived (0 → GOMAXPROCS).
	confWorkers atomic.Int32

	// pmu guards parts, the lazy per-table partition builds.
	pmu   sync.RWMutex
	parts map[string]*partState
}

// partState is one table's partition: the single-flight latch plus
// the per-shard sample-time spans recorded while the tuples streamed
// through, which let interval queries skip shards whose extent cannot
// touch the window. spans is written by the partition builder before
// the latch closes and read only after ok(), so readers see a
// complete slice.
type partState struct {
	unit  buildUnit
	spans []shardSpan
}

// shardSpan is one shard's sample-time extent within a partitioned
// table; n == 0 marks a shard that received no tuples.
type shardSpan struct {
	minT, maxT timedim.Instant
	n          int64
}

// disjoint reports whether the closed query window cannot touch any
// sample of the shard. Strict inequalities: a window that merely
// grazes the extent boundary still runs the shard, preserving the
// duration-0 graze semantics of the Type-7 queries.
func (sp shardSpan) disjoint(iv timedim.Interval) bool {
	return sp.n == 0 || iv.Hi < sp.minT || iv.Lo > sp.maxT
}

// NewSharded creates a coordinator with n shard engines over the
// model context (n < 1 is clamped to 1). Tables are partitioned
// lazily, on first query, and repartitioned after
// InvalidateTrajectories / ResetCache.
func NewSharded(mctx *fo.Context, n int) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	se := &ShardedEngine{
		mctx:   mctx,
		global: New(mctx),
		parts:  make(map[string]*partState),
	}
	for i := 0; i < n; i++ {
		sh := New(mctx.Derive())
		sh.isShard = true
		// The coordinator's bracket records the logical query; a shard
		// must never emit its own QueryRecord.
		sh.SetTelemetry(nil)
		se.shards = append(se.shards, sh)
	}
	se.applyWorkers()
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Context returns the original (full) model context.
func (se *ShardedEngine) Context() *fo.Context { return se.mctx }

// SetMetrics fans the metrics bundle to the coordinator and every
// shard (the gauges use delta accounting, so several engines share one
// bundle correctly).
func (se *ShardedEngine) SetMetrics(m *obs.Metrics) {
	se.global.SetMetrics(m)
	for _, sh := range se.shards {
		sh.SetMetrics(m)
	}
}

// SetTelemetry pins the collector the coordinator's brackets record
// to. Shards stay silent regardless.
func (se *ShardedEngine) SetTelemetry(c *telemetry.Collector) {
	se.global.SetTelemetry(c)
}

// SetWorkers bounds the total fan-out width across all shards: each
// shard gets an equal slice (at least 1), so a scattered query keeps
// roughly the configured concurrency instead of multiplying it by the
// shard count. 0 restores the default GOMAXPROCS budget.
func (se *ShardedEngine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	se.confWorkers.Store(int32(n))
	se.applyWorkers()
}

func (se *ShardedEngine) applyWorkers() {
	n := int(se.confWorkers.Load())
	se.global.SetWorkers(n)
	w := n
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	per := w / len(se.shards)
	if per < 1 {
		per = 1
	}
	for _, sh := range se.shards {
		sh.SetWorkers(per)
	}
}

// SetIntervalCacheCap fans the per-table interval-cache cap to every
// shard (and the routed engine).
func (se *ShardedEngine) SetIntervalCacheCap(n int) {
	se.global.SetIntervalCacheCap(n)
	for _, sh := range se.shards {
		sh.SetIntervalCacheCap(n)
	}
}

// SetAggGrid fans the pre-aggregated grid configuration to every
// shard (and the routed engine).
func (se *ShardedEngine) SetAggGrid(n int) {
	se.global.SetAggGrid(n)
	for _, sh := range se.shards {
		sh.SetAggGrid(n)
	}
}

// SetGridVerify fans verify mode to every shard (and the routed
// engine).
func (se *ShardedEngine) SetGridVerify(on bool) {
	se.global.SetGridVerify(on)
	for _, sh := range se.shards {
		sh.SetGridVerify(on)
	}
}

// SetTimeBuckets fans the grid's temporal-index configuration to
// every shard (and the routed engine).
func (se *ShardedEngine) SetTimeBuckets(n int) {
	se.global.SetTimeBuckets(n)
	for _, sh := range se.shards {
		sh.SetTimeBuckets(n)
	}
}

// InvalidateTrajectories drops every cache derived from the table on
// every shard and the routed engine, and schedules the table for
// repartitioning on its next query (call after mutating the MOFT).
// The fan-out must always cover all shards: clearing one shard's
// state while its siblings keep answering from the old generation
// would break the merge identity.
func (se *ShardedEngine) InvalidateTrajectories(table string) {
	se.dropParts(table)
	se.global.InvalidateTrajectories(table)
	for _, sh := range se.shards {
		sh.InvalidateTrajectories(table)
	}
}

// ResetCache drops every cached table on every shard and the routed
// engine, and forgets every partition.
func (se *ShardedEngine) ResetCache() {
	se.pmu.Lock()
	se.parts = make(map[string]*partState)
	se.pmu.Unlock()
	se.global.ResetCache()
	for _, sh := range se.shards {
		sh.ResetCache()
	}
}

// CacheStats reports the aggregate litCache footprint across the
// routed engine and every shard: objects sums every cached
// trajectory; tables counts each logical table once (the shards cache
// disjoint slices of the same table, so the per-engine maximum is the
// logical count).
func (se *ShardedEngine) CacheStats() (tables, objects int) {
	tables, objects = se.global.CacheStats()
	for _, sh := range se.shards {
		st, so := sh.CacheStats()
		if st > tables {
			tables = st
		}
		objects += so
	}
	return tables, objects
}

// --- partitioning ----------------------------------------------------

// mix64 is the splitmix64 finalizer: a stable, well-distributed hash
// of the object id. Stability across runs (and processes) keeps the
// partition — and therefore every per-shard cache — reproducible.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardOf is the partition function: every object id maps to exactly
// one shard.
func (se *ShardedEngine) shardOf(oid moft.Oid) int {
	return int(mix64(uint64(oid)) % uint64(len(se.shards)))
}

// partEntry returns (creating if needed) the table's partition state.
func (se *ShardedEngine) partEntry(table string) *partState {
	se.pmu.RLock()
	st := se.parts[table]
	se.pmu.RUnlock()
	if st == nil {
		se.pmu.Lock()
		if st = se.parts[table]; st == nil {
			st = &partState{}
			se.parts[table] = st
		}
		se.pmu.Unlock()
	}
	return st
}

// spansFor returns the table's per-shard sample-time spans, nil until
// a partition has completed (callers then skip nothing — the safe
// fallback).
func (se *ShardedEngine) spansFor(table string) []shardSpan {
	se.pmu.RLock()
	st := se.parts[table]
	se.pmu.RUnlock()
	if st == nil || !st.unit.ok() {
		return nil
	}
	return st.spans
}

// dropParts forgets a table's partition latch so the next query
// repartitions from the (possibly mutated) source table.
func (se *ShardedEngine) dropParts(table string) {
	se.pmu.Lock()
	delete(se.parts, table)
	se.pmu.Unlock()
}

// ensureParts partitions the table across the shards, single-flight:
// concurrent queries against an unpartitioned table split it exactly
// once. An abandoned build (cancel, budget, fault) resets for retry; a
// permanent failure (unknown table) drops the latch so a later query
// can retry after the table appears.
func (se *ShardedEngine) ensureParts(ctx context.Context, table string) error {
	st := se.partEntry(table)
	_, err := st.unit.run(ctx, "core/shard-partition", func() error {
		return se.partition(ctx, table, st)
	})
	if err != nil && !qerr.IsCancel(err) && !qerr.IsPanic(err) && !IsBudget(err) && !isInjected(err) {
		se.pmu.Lock()
		if se.parts[table] == st {
			delete(se.parts, table)
		}
		se.pmu.Unlock()
	}
	return err
}

// partition splits the source table into one MOFT per shard (same
// name, disjoint objects) and registers each slice with its shard's
// context, invalidating any caches a previous generation left behind.
// The per-shard sample-time spans are recorded on st while the tuples
// stream through, ready for interval-time pruning.
func (se *ShardedEngine) partition(ctx context.Context, table string, st *partState) error {
	if err := faultpoint.Hit(faultpoint.CoreShardPartition); err != nil {
		return err
	}
	tbl, err := se.mctx.Table(table)
	if err != nil {
		return err
	}
	parts := make([]*moft.Table, len(se.shards))
	for i := range parts {
		parts[i] = moft.New(table)
	}
	spans := make([]shardSpan, len(se.shards))
	for i, tp := range tbl.Tuples() {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s := se.shardOf(tp.Oid)
		parts[s].AddTuple(tp)
		sp := &spans[s]
		if sp.n == 0 || tp.T < sp.minT {
			sp.minT = tp.T
		}
		if sp.n == 0 || tp.T > sp.maxT {
			sp.maxT = tp.T
		}
		sp.n++
	}
	for i, sh := range se.shards {
		sh.Context().AddTable(parts[i])
		sh.InvalidateTrajectories(table)
	}
	st.spans = spans
	return nil
}

// --- scatter-gather --------------------------------------------------

// scatter runs fn once per shard, each on its own goroutine under a
// context that (a) marks the call as one shard of qc's logical query
// and (b) is cancelled as soon as any sibling fails. Panics in fn are
// isolated per shard. The returned error is selected deterministically
// — scanning shards in index order, the first non-cancellation error
// wins, falling back to the first error — so the caller's answer does
// not depend on goroutine scheduling.
func (se *ShardedEngine) scatter(ctx context.Context, qc *qctl, fn func(ctx context.Context, sh *Engine, idx int) error) error {
	return se.scatterSkip(ctx, qc, nil, fn)
}

// scatterSkip is scatter with a shard predicate: shards for which skip
// returns true are never spawned — the caller asserts their partition
// cannot contribute to the answer. Skipped shards still occupy their
// attribution slot (with zero load), so the logical query keeps one
// telemetry record covering all shards regardless of pruning.
func (se *ShardedEngine) scatterSkip(ctx context.Context, qc *qctl, skip func(i int) bool, fn func(ctx context.Context, sh *Engine, idx int) error) error {
	qc.attachShards(len(se.shards))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(se.shards))
	var wg sync.WaitGroup
	for i, sh := range se.shards {
		if skip != nil && skip(i) {
			continue
		}
		wg.Add(1)
		go func(i int, sh *Engine) {
			defer wg.Done()
			sctx := withShardCall(ctx, qc, i)
			err := runProtected("core/shard", func() error {
				return fn(sctx, sh, i)
			})
			if err != nil {
				errs[i] = err
				cancel() // first failure cancels the siblings
			}
		}(i, sh)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !qerr.IsCancel(err) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// scatterWindow scatters an interval query, skipping (not spawning)
// the shards whose recorded sample-time extent is disjoint from the
// window. Sound for every sample- and interpolation-level entry point:
// a shard's trajectories, beads and samples all live inside its
// sample-time extent, so a strictly disjoint window gets an empty
// answer from that shard. Until the table is partitioned the spans are
// unknown and nothing is skipped.
func (se *ShardedEngine) scatterWindow(ctx context.Context, qc *qctl, table string, iv timedim.Interval, fn func(ctx context.Context, sh *Engine, idx int) error) error {
	spans := se.spansFor(table)
	if len(spans) != len(se.shards) {
		return se.scatterSkip(ctx, qc, nil, fn)
	}
	skipped := int64(0)
	err := se.scatterSkip(ctx, qc, func(i int) bool {
		if spans[i].disjoint(iv) {
			skipped++
			return true
		}
		return false
	}, fn)
	if skipped > 0 {
		se.global.metrics().ShardTimeSkips.Add(skipped)
	}
	return err
}

// mergeOids concatenates the disjoint per-shard oid lists and sorts:
// each shard already returns ascending oids, so the sorted union is
// bit-identical to the single-engine answer. alwaysNonNil mirrors the
// entry point's empty-result convention (ObjectsSampledInside returns
// a non-nil empty slice; the others return nil).
//
//moglint:deterministic
func mergeOids(parts [][]moft.Oid, alwaysNonNil bool) []moft.Oid {
	var out []moft.Oid
	if alwaysNonNil {
		out = make([]moft.Oid, 0)
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeDurations unions the key-disjoint per-shard duration maps.
//
//moglint:deterministic
func mergeDurations(parts []map[moft.Oid]float64) map[moft.Oid]float64 {
	out := make(map[moft.Oid]float64)
	for _, p := range parts {
		for oid, v := range p {
			out[oid] = v
		}
	}
	return out
}

// --- routed entry points ---------------------------------------------
//
// First-order formulas admit negation and universal quantification, so
// evaluating them per partition and unioning is not sound in general;
// they run unsharded over the full context. The pure-GIS aggregations
// never touch a MOFT at all.

// GeometricAggregate evaluates a Definition-4 geometric aggregation.
func (se *ShardedEngine) GeometricAggregate(ctx context.Context, a gis.Aggregation) (float64, error) {
	return se.global.GeometricAggregate(ctx, a)
}

// SummableOverIDs evaluates the summable rewriting against a GIS fact
// table.
func (se *ShardedEngine) SummableOverIDs(ctx context.Context, ids []layer.Gid, ft *gis.FactTable, measure string) (float64, error) {
	return se.global.SummableOverIDs(ctx, ids, ft, measure)
}

// RegionC evaluates the formula to the paper's spatio-temporal
// structure C over the full (unpartitioned) tables.
func (se *ShardedEngine) RegionC(ctx context.Context, f fo.Formula, out []fo.Var) (*fo.Relation, error) {
	return se.global.RegionC(ctx, f, out)
}

// AggregateRegion evaluates region C and applies the γ operator.
func (se *ShardedEngine) AggregateRegion(ctx context.Context, f fo.Formula, out []fo.Var, fn olap.AggFunc, measure fo.Var, groupBy []fo.Var) (*olap.AggResult, error) {
	return se.global.AggregateRegion(ctx, f, out, fn, measure, groupBy)
}

// CountRegion evaluates region C and returns its cardinality.
func (se *ShardedEngine) CountRegion(ctx context.Context, f fo.Formula, out []fo.Var) (int, error) {
	return se.global.CountRegion(ctx, f, out)
}

// FilterGeometriesByAggregate gates layer geometries on an inner
// aggregate.
func (se *ShardedEngine) FilterGeometriesByAggregate(ctx context.Context, layerName string, kind layer.Kind,
	inner func(layer.Gid) (float64, error), op fo.CmpOp, threshold float64) ([]layer.Gid, error) {
	return se.global.FilterGeometriesByAggregate(ctx, layerName, kind, inner, op, threshold)
}

// --- scattered entry points ------------------------------------------

// ObjectsSampledAt returns the distinct objects with a sample exactly
// at instant t inside pg, scattered across the shards and merged in
// ascending oid order.
//
//moglint:deterministic
func (se *ShardedEngine) ObjectsSampledAt(ctx context.Context, table string, t timedim.Instant, pg geom.Polygon) (out []moft.Oid, err error) {
	qc, ctx, done := se.global.begin(ctx, "objects_sampled_at", table)
	defer done(&err)
	se.global.countQuery(6)
	if err := se.ensureParts(ctx, table); err != nil {
		return nil, err
	}
	parts := make([][]moft.Oid, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, timedim.Interval{Lo: t, Hi: t}, func(ctx context.Context, sh *Engine, i int) error {
		r, err := sh.ObjectsSampledAt(ctx, table, t, pg)
		parts[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	return mergeOids(parts, false), nil
}

// ObjectsInterpolatedAt returns the objects whose interpolated
// position at instant t lies in pg.
//
//moglint:deterministic
func (se *ShardedEngine) ObjectsInterpolatedAt(ctx context.Context, table string, t timedim.Instant, pg geom.Polygon) (out []moft.Oid, err error) {
	qc, ctx, done := se.global.begin(ctx, "objects_interpolated_at", table)
	defer done(&err)
	se.global.countQuery(6)
	if err := se.ensureParts(ctx, table); err != nil {
		return nil, err
	}
	parts := make([][]moft.Oid, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, timedim.Interval{Lo: t, Hi: t}, func(ctx context.Context, sh *Engine, i int) error {
		r, err := sh.ObjectsInterpolatedAt(ctx, table, t, pg)
		parts[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	return mergeOids(parts, false), nil
}

// Trajectories returns the interpolated trajectory of every object in
// the table, unioned from the shards' disjoint LIT caches. Unlike the
// unsharded engine the returned map is a fresh union per call, but as
// there callers must not mutate the trajectories it holds.
func (se *ShardedEngine) Trajectories(ctx context.Context, table string) (lits map[moft.Oid]*traj.LIT, err error) {
	qc, ctx, done := se.global.begin(ctx, "trajectories", table)
	defer done(&err)
	if err := se.ensureParts(ctx, table); err != nil {
		return nil, err
	}
	parts := make([]map[moft.Oid]*traj.LIT, len(se.shards))
	if err := se.scatter(ctx, qc, func(ctx context.Context, sh *Engine, i int) error {
		r, err := sh.Trajectories(ctx, table)
		parts[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	lits = make(map[moft.Oid]*traj.LIT)
	merged := 0
	for _, p := range parts {
		for oid, l := range p {
			if merged%checkEvery == 0 {
				if err := qc.step(ctx); err != nil {
					return nil, err
				}
			}
			merged++
			lits[oid] = l
		}
	}
	return lits, nil
}

// ObjectsPassingThrough returns the objects whose interpolated
// trajectory intersects pg at some time in iv.
//
//moglint:deterministic
func (se *ShardedEngine) ObjectsPassingThrough(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (out []moft.Oid, err error) {
	qc, ctx, done := se.global.begin(ctx, "objects_passing_through", table)
	defer done(&err)
	se.global.countQuery(7)
	qc.noteWindow(iv)
	if err := se.ensureParts(ctx, table); err != nil {
		return nil, err
	}
	parts := make([][]moft.Oid, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, iv, func(ctx context.Context, sh *Engine, i int) error {
		r, err := sh.ObjectsPassingThrough(ctx, table, pg, iv)
		parts[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	return mergeOids(parts, false), nil
}

// ObjectsSampledInside returns the objects with at least one raw
// sample in pg during iv (always a non-nil slice, like the unsharded
// entry point).
//
//moglint:deterministic
func (se *ShardedEngine) ObjectsSampledInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (out []moft.Oid, err error) {
	qc, ctx, done := se.global.begin(ctx, "objects_sampled_inside", table)
	defer done(&err)
	se.global.countQuery(7)
	qc.noteWindow(iv)
	if err := se.ensureParts(ctx, table); err != nil {
		return nil, err
	}
	parts := make([][]moft.Oid, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, iv, func(ctx context.Context, sh *Engine, i int) error {
		r, err := sh.ObjectsSampledInside(ctx, table, pg, iv)
		parts[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	return mergeOids(parts, true), nil
}

// CountSamplesInside returns the number of MOFT samples inside pg
// during iv, summed over the disjoint shard counts.
//
//moglint:deterministic
func (se *ShardedEngine) CountSamplesInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (n int, err error) {
	qc, ctx, done := se.global.begin(ctx, "count_samples_inside", table)
	defer done(&err)
	se.global.countQuery(4)
	qc.noteWindow(iv)
	if err := se.ensureParts(ctx, table); err != nil {
		return 0, err
	}
	counts := make([]int, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, iv, func(ctx context.Context, sh *Engine, i int) error {
		c, err := sh.CountSamplesInside(ctx, table, pg, iv)
		counts[i] = c
		return err
	}); err != nil {
		return 0, err
	}
	for _, c := range counts {
		n += c
	}
	return n, nil
}

// TimeSpentInside returns, per object, the total interpolated time
// spent inside pg within iv, unioned from the shards' key-disjoint
// answers.
//
//moglint:deterministic
func (se *ShardedEngine) TimeSpentInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (out map[moft.Oid]float64, err error) {
	qc, ctx, done := se.global.begin(ctx, "time_spent_inside", table)
	defer done(&err)
	se.global.countQuery(7)
	qc.noteWindow(iv)
	if err := se.ensureParts(ctx, table); err != nil {
		return nil, err
	}
	parts := make([]map[moft.Oid]float64, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, iv, func(ctx context.Context, sh *Engine, i int) error {
		r, err := sh.TimeSpentInside(ctx, table, pg, iv)
		parts[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	return mergeDurations(parts), nil
}

// ObjectsEverWithinRadius returns objects whose interpolated
// trajectory comes within distance r of center during iv, with the
// total time spent within.
//
//moglint:deterministic
func (se *ShardedEngine) ObjectsEverWithinRadius(ctx context.Context, table string, center geom.Point, r float64, iv timedim.Interval) (out map[moft.Oid]float64, err error) {
	qc, ctx, done := se.global.begin(ctx, "objects_ever_within_radius", table)
	defer done(&err)
	se.global.countQuery(7)
	qc.noteWindow(iv)
	if err := se.ensureParts(ctx, table); err != nil {
		return nil, err
	}
	parts := make([]map[moft.Oid]float64, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, iv, func(ctx context.Context, sh *Engine, i int) error {
		m, err := sh.ObjectsEverWithinRadius(ctx, table, center, r, iv)
		parts[i] = m
		return err
	}); err != nil {
		return nil, err
	}
	return mergeDurations(parts), nil
}

// CountPassingThroughGeometries counts the objects whose interpolated
// trajectory intersects at least one of the given polygons during iv.
// Each shard counts its own disjoint objects; the counts sum.
//
//moglint:deterministic
func (se *ShardedEngine) CountPassingThroughGeometries(ctx context.Context, table, layerName string, ids []layer.Gid, iv timedim.Interval) (n int, err error) {
	qc, ctx, done := se.global.begin(ctx, "count_passing_through_geometries", table)
	defer done(&err)
	se.global.countQuery(7)
	qc.noteWindow(iv)
	if err := se.ensureParts(ctx, table); err != nil {
		return 0, err
	}
	counts := make([]int, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, iv, func(ctx context.Context, sh *Engine, i int) error {
		c, err := sh.CountPassingThroughGeometries(ctx, table, layerName, ids, iv)
		counts[i] = c
		return err
	}); err != nil {
		return 0, err
	}
	for _, c := range counts {
		n += c
	}
	return n, nil
}

// TrajectoryAggregate computes the Type-8 aggregation for one object,
// routed to the single shard owning it.
func (se *ShardedEngine) TrajectoryAggregate(ctx context.Context, table string, oid moft.Oid) (st TrajectoryStats, err error) {
	qc, ctx, done := se.global.begin(ctx, "trajectory_aggregate", table)
	defer done(&err)
	se.global.countQuery(8)
	if err := se.ensureParts(ctx, table); err != nil {
		return TrajectoryStats{}, err
	}
	idx := se.shardOf(oid)
	qc.attachShards(len(se.shards))
	return se.shards[idx].TrajectoryAggregate(withShardCall(ctx, qc, idx), table, oid)
}

// ObjectsPossiblyPassingThrough stratifies the objects of a table by
// their relation to pg during iv under the lifeline-bead model,
// scattered per shard and merged stratum by stratum.
//
//moglint:deterministic
func (se *ShardedEngine) ObjectsPossiblyPassingThrough(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval, speedFactor float64) (res PossiblyResult, err error) {
	qc, ctx, done := se.global.begin(ctx, "objects_possibly_passing_through", table)
	defer done(&err)
	qc.noteWindow(iv)
	if speedFactor < 1 {
		return PossiblyResult{}, errSpeedFactor(speedFactor)
	}
	if err := se.ensureParts(ctx, table); err != nil {
		return PossiblyResult{}, err
	}
	parts := make([]PossiblyResult, len(se.shards))
	if err := se.scatterWindow(ctx, qc, table, iv, func(ctx context.Context, sh *Engine, i int) error {
		r, err := sh.ObjectsPossiblyPassingThrough(ctx, table, pg, iv, speedFactor)
		parts[i] = r
		return err
	}); err != nil {
		return PossiblyResult{}, err
	}
	def := make([][]moft.Oid, len(parts))
	likely := make([][]moft.Oid, len(parts))
	possible := make([][]moft.Oid, len(parts))
	for i, p := range parts {
		def[i], likely[i], possible[i] = p.Definite, p.Likely, p.Possible
	}
	return PossiblyResult{
		Definite: mergeOids(def, true),
		Likely:   mergeOids(likely, false),
		Possible: mergeOids(possible, false),
	}, nil
}
