package core_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mogis/internal/core"
	"mogis/internal/faultpoint"
	"mogis/internal/geom"
	"mogis/internal/obs"
	"mogis/internal/qerr"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// robustWorkload builds a generated-city engine with isolated metrics
// and enough objects (64 > serialThreshold) to exercise the parallel
// fan-out, plus the query shapes the robustness tests reuse.
type robustWorkload struct {
	eng *core.Engine
	// sharded is a 3-shard coordinator over the same model context,
	// for the chaos cells and robustness tests of the scatter path.
	sharded *core.ShardedEngine
	met     *obs.Metrics
	pg      geom.Polygon
	center  geom.Point
	radius  float64
	win     timedim.Interval
	mid     timedim.Instant
}

func newRobustWorkload(t *testing.T) *robustWorkload {
	t.Helper()
	city := workload.GenCity(workload.CityConfig{Seed: 7, Cols: 4, Rows: 4})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 11, Objects: 64, Samples: 40})
	lo, hi, _ := fm.TimeSpan()
	_, eng := city.Context(fm)
	met := obs.NewMetrics(obs.NewRegistry())
	eng.SetMetrics(met)
	sharded := core.NewSharded(eng.Context(), 3)
	sharded.SetMetrics(met)
	pg, ok := city.Ln.Polygon(1)
	if !ok {
		t.Fatal("city has no neighborhood polygon 1")
	}
	return &robustWorkload{
		eng: eng, sharded: sharded, met: met, pg: pg,
		center: geom.Pt(city.Extent.MinX+city.Extent.Width()/2, city.Extent.MinY+city.Extent.Height()/2),
		radius: city.Extent.Width() / 4,
		win:    timedim.Interval{Lo: lo, Hi: hi},
		mid:    lo + (hi-lo)/2,
	}
}

// TestPreCancelledContext: a context already cancelled at entry makes
// every trajectory entry point return a cancellation error without
// latching any cache state, and the cancellation counter records it.
func TestPreCancelledContext(t *testing.T) {
	w := newRobustWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	calls := map[string]func() error{
		"Trajectories": func() error {
			_, err := w.eng.Trajectories(ctx, "FM")
			return err
		},
		"ObjectsPassingThrough": func() error {
			_, err := w.eng.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
			return err
		},
		"ObjectsSampledInside": func() error {
			_, err := w.eng.ObjectsSampledInside(ctx, "FM", w.pg, w.win)
			return err
		},
		"TimeSpentInside": func() error {
			_, err := w.eng.TimeSpentInside(ctx, "FM", w.pg, w.win)
			return err
		},
		"ObjectsEverWithinRadius": func() error {
			_, err := w.eng.ObjectsEverWithinRadius(ctx, "FM", w.center, w.radius, w.win)
			return err
		},
		"CountSamplesInside": func() error {
			_, err := w.eng.CountSamplesInside(ctx, "FM", w.pg, w.win)
			return err
		},
		"TrajectoryAggregate": func() error {
			_, err := w.eng.TrajectoryAggregate(ctx, "FM", 1)
			return err
		},
	}
	for name, call := range calls {
		if err := call(); !qerr.IsCancel(err) {
			t.Errorf("%s with cancelled ctx: got %v, want cancellation", name, err)
		}
	}
	if tables, objects := w.eng.CacheStats(); tables != 0 || objects != 0 {
		t.Errorf("cancelled queries latched cache state: tables=%d objects=%d", tables, objects)
	}
	if got := w.met.QueriesCancelled.Value(); got < int64(len(calls)) {
		t.Errorf("QueriesCancelled = %d, want >= %d", got, len(calls))
	}
}

// TestCancelDuringBuildAsIfNeverStarted: a deadline that expires
// mid-LIT-build abandons the build without publishing anything, and
// the next query on a live context rebuilds and answers bit-identically
// to an engine that never saw the cancellation.
func TestCancelDuringBuildAsIfNeverStarted(t *testing.T) {
	w := newRobustWorkload(t)
	faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModeDelay, 30*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	_, err := w.eng.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
	cancel()
	faultpoint.Reset()
	if !qerr.IsCancel(err) {
		t.Fatalf("deadline mid-build: got %v, want cancellation", err)
	}
	if tables, _ := w.eng.CacheStats(); tables != 0 {
		t.Fatalf("abandoned build latched the LIT cache: tables=%d", tables)
	}

	got, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatalf("retry after abandoned build: %v", err)
	}
	want, err := newRobustWorkload(t).eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatalf("fresh engine: %v", err)
	}
	if !eqOids(got, want) {
		t.Errorf("retry after cancel diverged: got %v, want %v", got, want)
	}
	if tables, _ := w.eng.CacheStats(); tables != 1 {
		t.Errorf("retry did not latch the cache: tables=%d", tables)
	}
}

// TestGoroutineLeakAfterCancelledQueries is the leak regression: a
// thousand cancelled queries (pre-cancelled and expiring mid-flight)
// must not strand worker goroutines.
func TestGoroutineLeakAfterCancelledQueries(t *testing.T) {
	w := newRobustWorkload(t)
	// Warm the caches so the loop exercises the fan-out path, not the
	// build path.
	if _, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 1000; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // pre-cancelled
		} else {
			time.AfterFunc(time.Microsecond, cancel) // races the query
		}
		_, _ = w.eng.ObjectsEverWithinRadius(ctx, "FM", w.center, w.radius, w.win)
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestBudgetMaxRows: a tiny row budget aborts a scan-heavy query with
// a typed *BudgetError and bumps the rows-exceeded counter.
func TestBudgetMaxRows(t *testing.T) {
	w := newRobustWorkload(t)
	ctx := core.WithBudget(context.Background(), core.Budget{MaxRows: 10})
	_, err := w.eng.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetError", err)
	}
	if be.Resource != "rows" {
		t.Errorf("Resource = %q, want rows", be.Resource)
	}
	if !core.IsBudget(err) {
		t.Error("IsBudget(err) = false")
	}
	if got := w.met.BudgetRowsExceeded.Value(); got == 0 {
		t.Error("BudgetRowsExceeded not incremented")
	}
	// The same query without a budget succeeds: the abort left the
	// engine coherent.
	if _, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win); err != nil {
		t.Errorf("unbudgeted retry: %v", err)
	}
}

// TestBudgetMaxResults: a one-item result budget aborts a query that
// matches many objects.
func TestBudgetMaxResults(t *testing.T) {
	w := newRobustWorkload(t)
	big := w.win
	ctx := core.WithBudget(context.Background(), core.Budget{MaxResults: 1})
	_, err := w.eng.ObjectsSampledInside(ctx, "FM", w.pg, big)
	if err == nil {
		// The grid path produces its result in one step; the scan path
		// must hit the budget. Force the scan.
		w.eng.SetAggGrid(0)
		_, err = w.eng.ObjectsSampledInside(ctx, "FM", w.pg, big)
	}
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetError", err)
	}
	if be.Resource != "results" {
		t.Errorf("Resource = %q, want results", be.Resource)
	}
	if got := w.met.BudgetResultsExceeded.Value(); got == 0 {
		t.Error("BudgetResultsExceeded not incremented")
	}
}

// TestBudgetTimeout: Budget.Timeout is applied at entry, so an
// already-expired deadline surfaces as a cancellation at the first
// checkpoint.
func TestBudgetTimeout(t *testing.T) {
	w := newRobustWorkload(t)
	ctx := core.WithBudget(context.Background(), core.Budget{Timeout: time.Nanosecond})
	_, err := w.eng.Trajectories(ctx, "FM")
	if !qerr.IsCancel(err) {
		t.Fatalf("got %v, want cancellation", err)
	}
	if got := w.met.QueriesCancelled.Value(); got == 0 {
		t.Error("QueriesCancelled not incremented")
	}
	// The deadline lives on the per-query derived context only: the
	// caller's context is untouched and the engine still answers.
	if _, err := w.eng.Trajectories(context.Background(), "FM"); err != nil {
		t.Errorf("query after budget timeout: %v", err)
	}
}

// TestRetryAfterInjectedFaultBitIdentical: one injected build failure,
// then the identical query succeeds and matches a never-faulted engine
// exactly.
func TestRetryAfterInjectedFaultBitIdentical(t *testing.T) {
	w := newRobustWorkload(t)
	faultpoint.ArmOnce(faultpoint.CoreLITBuild, faultpoint.ModeError, 0, 1)
	defer faultpoint.Reset()

	_, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	var f *faultpoint.Fault
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want injected *faultpoint.Fault", err)
	}
	if f.Site != faultpoint.CoreLITBuild {
		t.Errorf("fault site = %q, want %q", f.Site, faultpoint.CoreLITBuild)
	}

	got, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatalf("retry after injected fault: %v", err)
	}
	want, err := newRobustWorkload(t).eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}
	if !eqOids(got, want) {
		t.Errorf("retry diverged: got %v, want %v", got, want)
	}
}

// TestPanicIsolation: a panic injected inside a worker chunk surfaces
// as a typed QueryPanicError with a captured stack, siblings drain,
// and the engine keeps answering.
func TestPanicIsolation(t *testing.T) {
	w := newRobustWorkload(t)
	want, err := w.eng.TimeSpentInside(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}
	w.eng.ResetCache()

	faultpoint.Arm(faultpoint.CoreFanoutChunk, faultpoint.ModePanic, 0)
	_, err = w.eng.TimeSpentInside(context.Background(), "FM", w.pg, w.win)
	faultpoint.Reset()
	if !qerr.IsPanic(err) {
		t.Fatalf("got %v, want recovered panic", err)
	}
	var pe *qerr.QueryPanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("recovered panic carries no stack: %v", err)
	}
	if got := w.met.QueryPanics.Value(); got == 0 {
		t.Error("QueryPanics not incremented")
	}

	got, err := w.eng.TimeSpentInside(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatalf("engine unusable after recovered panic: %v", err)
	}
	if !eqDurations(got, want) {
		t.Errorf("post-panic result diverged: got %v, want %v", got, want)
	}
}

// TestNilContextMeansBackground: a nil context is accepted and treated
// as context.Background (API leniency for the oldest call sites).
func TestNilContextMeansBackground(t *testing.T) {
	w := newRobustWorkload(t)
	//nolint:staticcheck // deliberately passing nil: the documented leniency
	var nilCtx context.Context
	if _, err := w.eng.Trajectories(nilCtx, "FM"); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}

// TestCancelReturnsWithinOneStride bounds abort latency: with the
// caches warm, a cancellation mid-query is observed well before the
// query would finish scanning everything.
func TestCancelReturnsWithinOneStride(t *testing.T) {
	w := newRobustWorkload(t)
	if _, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := w.eng.ObjectsEverWithinRadius(ctx, "FM", w.center, w.radius, w.win)
	if !qerr.IsCancel(err) {
		t.Fatalf("got %v, want cancellation", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled query took %v to return", d)
	}
}
