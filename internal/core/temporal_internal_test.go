package core

import (
	"context"
	"testing"

	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/telemetry"
	"mogis/internal/timedim"
)

// TestShardedTimeSkipDeterministic pins the shard time-pruning
// contract on a hand-built two-shard table whose shards own disjoint
// time ranges: a window touching only one shard's extent must skip the
// other (counted in ShardTimeSkips) without spawning it, while the
// logical query still produces exactly one telemetry record covering
// every shard slot — and the answers stay identical to an unsharded
// engine. White-box: shardOf picks oids that land on different shards.
func TestShardedTimeSkipDeterministic(t *testing.T) {
	pick := NewSharded(fo.NewContext(nil), 2)
	var a, b moft.Oid
	for oid := moft.Oid(1); a == 0 || b == 0; oid++ {
		switch pick.shardOf(oid) {
		case 0:
			if a == 0 {
				a = oid
			}
		case 1:
			if b == 0 {
				b = oid
			}
		}
	}

	// Shard of a owns instants [0,900], shard of b owns [100000,100900].
	fm := moft.New("FM")
	for i := 0; i < 10; i++ {
		fm.Add(a, timedim.Instant(i*100), 25+float64(i), 25)
		fm.Add(b, timedim.Instant(100000+i*100), 75-float64(i), 75)
	}
	ctx := fo.NewContext(nil).AddTable(fm)
	se := NewSharded(ctx, 2)
	met := obs.NewMetrics(obs.NewRegistry())
	se.SetMetrics(met)
	col := telemetry.New(telemetry.Config{Registry: obs.NewRegistry(), SampleEvery: -1})
	se.SetTelemetry(col)
	oracle := New(fo.NewContext(nil).AddTable(fm))

	pg := geom.Polygon{Shell: geom.Ring{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(0, 100)}}
	count := func(iv timedim.Interval) int {
		t.Helper()
		n, err := se.CountSamplesInside(context.Background(), "FM", pg, iv)
		if err != nil {
			t.Fatalf("CountSamplesInside %v: %v", iv, err)
		}
		want, err := oracle.CountSamplesInside(context.Background(), "FM", pg, iv)
		if err != nil {
			t.Fatalf("oracle %v: %v", iv, err)
		}
		if n != want {
			t.Fatalf("CountSamplesInside %v = %d, unsharded = %d", iv, n, want)
		}
		return n
	}

	cases := []struct {
		name  string
		iv    timedim.Interval
		want  int
		skips int64 // ShardTimeSkips delta
	}{
		{"early window prunes late shard", timedim.Interval{Lo: 0, Hi: 900}, 10, 1},
		{"late window prunes early shard", timedim.Interval{Lo: 100000, Hi: 100900}, 10, 1},
		{"spanning window runs both", timedim.Interval{Lo: 0, Hi: 100900}, 20, 0},
		{"gap between shards prunes both", timedim.Interval{Lo: 5000, Hi: 90000}, 0, 2},
		{"boundary graze runs the grazed shard", timedim.Interval{Lo: 100900, Hi: 200000}, 1, 1},
		{"one past the extent prunes it", timedim.Interval{Lo: 100901, Hi: 200000}, 0, 2},
	}
	for _, tc := range cases {
		before := met.ShardTimeSkips.Value()
		if got := count(tc.iv); got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.name, got, tc.want)
		}
		if d := met.ShardTimeSkips.Value() - before; d != tc.skips {
			t.Errorf("%s: ShardTimeSkips delta = %d, want %d", tc.name, d, tc.skips)
		}
	}

	// Even with a shard pruned, the logical query records exactly one
	// QueryRecord whose shard attribution covers the whole fleet.
	recs := col.Recent(1)
	if len(recs) != 1 {
		t.Fatalf("Recent(1) returned %d records", len(recs))
	}
	if got := recs[0].Op; got != "count_samples_inside" {
		t.Errorf("newest record op = %q, want count_samples_inside", got)
	}
	if len(recs[0].Shards) != se.Shards() {
		t.Errorf("record has %d shard slots, want %d (skipped shards must stay attributed)",
			len(recs[0].Shards), se.Shards())
	}
	if recs[0].Window != 200000-100901+1 {
		t.Errorf("record window = %d, want %d", recs[0].Window, 200000-100901+1)
	}

	// Instant routing prunes by time too.
	before := met.ShardTimeSkips.Value()
	oids, err := se.ObjectsSampledAt(context.Background(), "FM", 0, pg)
	if err != nil {
		t.Fatalf("ObjectsSampledAt: %v", err)
	}
	if len(oids) != 1 || oids[0] != a {
		t.Errorf("ObjectsSampledAt(0) = %v, want [%d]", oids, a)
	}
	if d := met.ShardTimeSkips.Value() - before; d != 1 {
		t.Errorf("ObjectsSampledAt skip delta = %d, want 1", d)
	}

	// Mutating the table and fanning invalidation must rebuild the
	// spans: the new sample sits in the gap both shards used to skip.
	fm.Add(b, 5000, 50, 50)
	se.InvalidateTrajectories("FM")
	oracle.InvalidateTrajectories("FM")
	if got := count(timedim.Interval{Lo: 5000, Hi: 90000}); got != 1 {
		t.Errorf("post-invalidation gap count = %d, want 1 (stale shard spans?)", got)
	}
}
