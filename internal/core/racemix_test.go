package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mogis/internal/core"
	"mogis/internal/faultpoint"
	"mogis/internal/qerr"
)

// TestRaceMixQueriesInvalidationFaults is the robustness counterpart
// of TestConcurrentMixedQueries: many goroutines issue queries — some
// cancelled mid-flight, some budgeted — while others invalidate the
// caches and arm/disarm faultpoints. Under -race this is the
// thread-safety contract of the cancellation and fault-injection
// machinery; the error-typing assertions are the fault-isolation
// contract (a query may fail only in one of the sanctioned ways, and
// the engine must keep answering afterwards).
func TestRaceMixQueriesInvalidationFaults(t *testing.T) {
	w := newRobustWorkload(t)
	defer faultpoint.Reset()

	want, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatal(err)
	}

	const (
		queryWorkers = 8
		iters        = 40
	)
	var wgQueries, wgChurn sync.WaitGroup
	errCh := make(chan error, queryWorkers*iters)
	stop := make(chan struct{})

	// Query goroutines: rotate through plain, cancelled, and budgeted
	// calls across several entry points.
	for g := 0; g < queryWorkers; g++ {
		wgQueries.Add(1)
		go func(g int) {
			defer wgQueries.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				switch i % 4 {
				case 1:
					cancel() // pre-cancelled
				case 2:
					time.AfterFunc(time.Duration(i%7)*100*time.Microsecond, cancel)
				case 3:
					ctx = core.WithBudget(ctx, core.Budget{MaxRows: 512})
				}
				var err error
				switch (g + i) % 4 {
				case 0:
					_, err = w.eng.ObjectsPassingThrough(ctx, "FM", w.pg, w.win)
				case 1:
					_, err = w.eng.ObjectsSampledInside(ctx, "FM", w.pg, w.win)
				case 2:
					_, err = w.eng.TimeSpentInside(ctx, "FM", w.pg, w.win)
				case 3:
					_, err = w.eng.Trajectories(ctx, "FM")
				}
				if err != nil {
					errCh <- err
				}
				cancel()
			}
		}(g)
	}

	// Invalidators: race the caches out from under the queries.
	churn := func(f func(), pause time.Duration) {
		defer wgChurn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f()
				time.Sleep(pause)
			}
		}
	}
	wgChurn.Add(3)
	go churn(func() { w.eng.InvalidateTrajectories("FM") }, 200*time.Microsecond)
	go churn(func() { w.eng.ResetCache() }, 500*time.Microsecond)
	// Fault toggler: one-shot error injections on the build path while
	// everything above is in flight.
	go churn(func() {
		faultpoint.ArmOnce(faultpoint.CoreLITBuild, faultpoint.ModeError, 0, 1)
	}, 300*time.Microsecond)

	wgQueries.Wait()
	close(stop)
	wgChurn.Wait()
	close(errCh)

	for err := range errCh {
		var be *core.BudgetError
		var f *faultpoint.Fault
		switch {
		case qerr.IsCancel(err), qerr.IsPanic(err):
		case errors.As(err, &be), errors.As(err, &f):
		default:
			t.Errorf("query failed in an unsanctioned way: %v", err)
		}
	}

	// The engine must come out of the storm coherent: disarm everything
	// and re-answer the baseline query bit-identically.
	faultpoint.Reset()
	got, err := w.eng.ObjectsPassingThrough(context.Background(), "FM", w.pg, w.win)
	if err != nil {
		t.Fatalf("post-storm query: %v", err)
	}
	if !eqOids(got, want) {
		t.Errorf("post-storm result diverged: got %v, want %v", got, want)
	}
}
