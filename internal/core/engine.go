// Package core is the paper's primary contribution in executable
// form: a spatio-temporal aggregation engine that integrates GIS
// dimensions, OLAP dimensions (including Time) and moving-object fact
// tables, and evaluates the eight query classes of Section 3.1:
//
//  1. spatial aggregation (geometric integration, Definition 4),
//  2. spatial aggregation with numeric information in the region
//     condition (summable rewriting),
//  3. pure trajectory-sample aggregation over FM and Time,
//  4. trajectory samples under geometric conditions (region C as a
//     first-order formula evaluated to a finite (Oid, t, ...) set),
//  5. regions whose condition itself contains an aggregation
//     ("second-order" aggregation),
//  6. the trajectory as a static spatial object at an instant,
//  7. trajectory queries requiring linear interpolation, and
//  8. aggregation over a single object's trajectory.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mogis/internal/agggrid"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

// Engine evaluates spatio-temporal aggregate queries against a model
// context. An Engine is safe for concurrent use: the per-table caches
// (trajectories, spatial prefilter, interval cache) are built
// single-flight behind a read-write lock, and the trajectory query
// hot path fans out over a worker pool (see cache.go). The model
// context itself must not be mutated while queries are in flight —
// invalidate the affected table's caches after MOFT mutations.
type Engine struct {
	ctx *fo.Context
	// met receives engine metrics (cache hits, query-type counts).
	met atomic.Pointer[obs.Metrics]

	mu sync.RWMutex
	// litCache holds the per-table cache units (LITs, prefilter
	// R-tree, interval cache), built single-flight.
	litCache map[string]*tableCache
	// accTables/accObjects are this engine's last contribution to the
	// shared LitCacheTables/LitCacheObjects gauges, so several engines
	// can account against one metrics bundle.
	accTables, accObjects int

	// workers bounds the per-query fan-out (0 → GOMAXPROCS).
	workers atomic.Int32
	// intervalCap is the interval-cache polygon cap (0 → default,
	// negative → caching disabled).
	intervalCap atomic.Int32
	// gridCells configures the pre-aggregated sample grid (0 → default
	// auto-sizing, n > 0 → n×n cells, negative → grid disabled).
	gridCells atomic.Int32
	// gridVerify cross-checks every grid-accelerated result against
	// the slow path (the exact-identity gate).
	gridVerify atomic.Bool
}

// New creates an engine over the model context.
func New(ctx *fo.Context) *Engine {
	e := &Engine{
		ctx:      ctx,
		litCache: make(map[string]*tableCache),
	}
	e.met.Store(obs.Std)
	return e
}

// Context returns the underlying model context.
func (e *Engine) Context() *fo.Context { return e.ctx }

// SetMetrics redirects the engine's metrics to m (nil restores the
// process-wide obs.Std bundle). Useful for isolating counts in tests.
func (e *Engine) SetMetrics(m *obs.Metrics) {
	if m == nil {
		m = obs.Std
	}
	e.met.Store(m)
}

// metrics returns the engine's current instrument bundle.
func (e *Engine) metrics() *obs.Metrics { return e.met.Load() }

// SetWorkers bounds the worker pool of the trajectory query fan-out:
// 1 forces the serial path, 0 restores the default GOMAXPROCS sizing.
// Benchmarks use it to sweep worker counts.
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers.Store(int32(n))
}

// SetIntervalCacheCap bounds the number of distinct polygons whose
// inside-intervals are memoized per table (the interval cache);
// n <= 0 disables the cache entirely, 0 < n sets the cap (default
// 256). Exceeding the cap clears the table's memoized set whole.
func (e *Engine) SetIntervalCacheCap(n int) {
	if n <= 0 {
		e.intervalCap.Store(-1)
		return
	}
	e.intervalCap.Store(int32(n))
}

// intervalCacheCap resolves the configured cap (0 = disabled).
func (e *Engine) intervalCacheCap() int {
	c := e.intervalCap.Load()
	switch {
	case c == 0:
		return defaultIntervalCacheCap
	case c < 0:
		return 0
	default:
		return int(c)
	}
}

// SetAggGrid configures the pre-aggregated sample grid that
// accelerates polygon aggregates over raw samples: n < 0 disables the
// grid (queries take the scan path), 0 restores the default
// auto-sizing (~64 samples per cell), n > 0 forces an n×n grid. The
// setting applies to grids built afterwards; call ResetCache or
// InvalidateTrajectories to rebuild an existing grid.
func (e *Engine) SetAggGrid(n int) {
	if n < 0 {
		n = -1
	}
	e.gridCells.Store(int32(n))
}

// gridEnabled reports whether sample queries may use the grid.
func (e *Engine) gridEnabled() bool { return e.gridCells.Load() >= 0 }

// SetGridVerify toggles verify mode: every grid-accelerated result is
// recomputed on the slow path and compared; a divergence increments
// AggGridMismatches and the slow result wins. For tests and gates.
func (e *Engine) SetGridVerify(on bool) { e.gridVerify.Store(on) }

// sampleGrid returns the table's pre-aggregated grid, creating the
// cache entry if needed. Unlike table(), it never triggers the LIT
// build — sample-only queries don't pay for interpolation.
func (e *Engine) sampleGrid(table string) (*agggrid.Grid, error) {
	e.mu.RLock()
	tc := e.litCache[table]
	e.mu.RUnlock()
	if tc == nil {
		e.mu.Lock()
		if tc = e.litCache[table]; tc == nil {
			tc = &tableCache{built: make(chan struct{})}
			e.litCache[table] = tc
		}
		e.mu.Unlock()
	}
	g, err := tc.aggGrid(e, table)
	if err != nil {
		// Drop the failed entry (unknown table) so a later call can
		// retry after the table appears.
		e.mu.Lock()
		if e.litCache[table] == tc {
			delete(e.litCache, table)
		}
		e.mu.Unlock()
		return nil, err
	}
	return g, nil
}

// --- Type 1: spatial aggregation ------------------------------------

// GeometricAggregate evaluates a Definition-4 geometric aggregation.
func (e *Engine) GeometricAggregate(a gis.Aggregation) (float64, error) {
	e.metrics().Query(1).Inc()
	return a.Evaluate()
}

// --- Type 2: spatial aggregation over numeric conditions ------------

// SummableOverIDs evaluates the summable rewriting Σ_{g∈ids} measure(g)
// against a GIS fact table.
func (e *Engine) SummableOverIDs(ids []layer.Gid, ft *gis.FactTable, measure string) (float64, error) {
	e.metrics().Query(2).Inc()
	return gis.SummableFromFact(ids, ft, measure).Evaluate()
}

// --- Types 3, 4: region C as a first-order formula -------------------

// RegionC evaluates the formula to the paper's spatio-temporal
// structure C: a finite relation over the named output variables,
// e.g. (Oid, t) pairs.
func (e *Engine) RegionC(f fo.Formula, out []fo.Var) (*fo.Relation, error) {
	e.metrics().Query(3).Inc()
	return e.regionC(f, out)
}

// regionC is RegionC without the Type-3 counter, for internal reuse by
// the Type-4 entry points.
func (e *Engine) regionC(f fo.Formula, out []fo.Var) (*fo.Relation, error) {
	return fo.Eval(e.ctx, f, out)
}

// AggregateRegion evaluates region C and applies the γ operator of
// Definition 7: Q = γ_{fn,measure,groupBy}(C).
func (e *Engine) AggregateRegion(f fo.Formula, out []fo.Var, fn olap.AggFunc, measure fo.Var, groupBy []fo.Var) (*olap.AggResult, error) {
	e.metrics().Query(4).Inc()
	rel, err := e.regionC(f, out)
	if err != nil {
		return nil, err
	}
	sp := e.ctx.Tracer().Start("aggregate_group")
	defer sp.End()
	res, err := rel.GroupAggregate(fn, measure, groupBy)
	if err == nil {
		sp.SetCount("groups", int64(len(res.Rows)))
	}
	return res, err
}

// CountRegion evaluates region C and returns its cardinality — the
// most common aggregation ("number of buses", "number of cars").
func (e *Engine) CountRegion(f fo.Formula, out []fo.Var) (int, error) {
	e.metrics().Query(4).Inc()
	rel, err := e.regionC(f, out)
	if err != nil {
		return 0, err
	}
	sp := e.ctx.Tracer().Start("aggregate_count")
	sp.SetCount("tuples", int64(rel.Len()))
	sp.End()
	return rel.Len(), nil
}

// RatePerHour divides a region-C cardinality by a time span in hours,
// the "per hour" normalization of the motivating query (Remark 1:
// 4 tuples over a 3-hour morning span give 4/3).
func RatePerHour(count int, hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	return float64(count) / hours
}

// --- Type 5: second-order regions ------------------------------------

// FilterGeometriesByAggregate returns the geometry ids of the given
// kind in the given layer for which the inner aggregate satisfies op
// against threshold. This realizes regions such as "neighborhoods
// where the number of people with low income exceeds 50,000": the
// inner aggregation runs per geometry and gates its membership in C.
func (e *Engine) FilterGeometriesByAggregate(layerName string, kind layer.Kind,
	inner func(layer.Gid) (float64, error), op fo.CmpOp, threshold float64) ([]layer.Gid, error) {
	e.metrics().Query(5).Inc()
	l, ok := e.ctx.GIS().Layer(layerName)
	if !ok {
		return nil, fmt.Errorf("core: unknown layer %q", layerName)
	}
	var out []layer.Gid
	for _, id := range l.IDs(kind) {
		v, err := inner(id)
		if err != nil {
			return nil, fmt.Errorf("core: inner aggregate for %s %d: %w", kind, id, err)
		}
		keep := false
		switch op {
		case fo.LT:
			keep = v < threshold
		case fo.LE:
			keep = v <= threshold
		case fo.EQ:
			keep = v == threshold
		case fo.NE:
			keep = v != threshold
		case fo.GE:
			keep = v >= threshold
		case fo.GT:
			keep = v > threshold
		}
		if keep {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// --- Type 6: the trajectory as a static object at an instant ---------

// ObjectsSampledAt returns the distinct objects with a sample exactly
// at instant t whose position lies in pg (the sample-level semantics
// of query Q4). Grid-accelerated when the pre-aggregated sample grid
// is enabled (the default); results are identical either way.
//
//moglint:deterministic
func (e *Engine) ObjectsSampledAt(table string, t timedim.Instant, pg geom.Polygon) ([]moft.Oid, error) {
	e.metrics().Query(6).Inc()
	tbl, err := e.ctx.Table(table)
	if err != nil {
		return nil, err
	}
	if e.gridEnabled() {
		g, err := e.sampleGrid(table)
		if err != nil {
			return nil, err
		}
		out := g.ObjectsSampled(pg, int64(t), int64(t), e.metrics())
		if e.gridVerify.Load() {
			out = e.checkOids(out, e.objectsSampledAtScan(tbl, t, pg))
		}
		return out, nil
	}
	return e.objectsSampledAtScan(tbl, t, pg), nil
}

// objectsSampledAtScan is the unaccelerated ObjectsSampledAt: a
// columnar scan with per-object binary search on the instant.
func (e *Engine) objectsSampledAtScan(tbl *moft.Table, t timedim.Instant, pg geom.Polygon) []moft.Oid {
	cols := tbl.Columns()
	tt := int64(t)
	var out []moft.Oid
	scanned := int64(0)
	for i := 0; i < cols.NumObjects(); i++ {
		lo, hi := cols.ObjectRange(i)
		ts := cols.T[lo:hi]
		j := sort.Search(len(ts), func(k int) bool { return ts[k] >= tt })
		for ; j < len(ts) && ts[j] == tt; j++ {
			scanned++
			if pg.ContainsPoint(geom.Pt(cols.X[lo+j], cols.Y[lo+j])) {
				out = append(out, cols.Oids[i])
				break
			}
		}
	}
	e.metrics().MOFTTuplesScanned.Add(scanned)
	return out
}

// checkOids is the verify-mode identity gate: on any divergence the
// mismatch counter fires and the slow result wins.
func (e *Engine) checkOids(fast, slow []moft.Oid) []moft.Oid {
	if len(fast) == len(slow) {
		same := true
		for i := range fast {
			if fast[i] != slow[i] {
				same = false
				break
			}
		}
		if same {
			return fast
		}
	}
	e.metrics().AggGridMismatches.Inc()
	return slow
}

// ObjectsInterpolatedAt returns the objects whose interpolated
// position at instant t lies in pg, even between samples.
//
//moglint:deterministic
func (e *Engine) ObjectsInterpolatedAt(table string, t timedim.Instant, pg geom.Polygon) ([]moft.Oid, error) {
	e.metrics().Query(6).Inc()
	tc, err := e.table(table)
	if err != nil {
		return nil, err
	}
	cand := tc.candidates(e.metrics(), pg.BBox())
	workers := e.workerCount(len(cand))
	parts := make([][]moft.Oid, workers)
	forChunks(workers, len(cand), func(chunk, lo, hi int) {
		var local []moft.Oid
		for _, oid := range cand[lo:hi] {
			if p, ok := tc.lits[oid].AtInstant(t); ok && pg.ContainsPoint(p) {
				local = append(local, oid)
			}
		}
		parts[chunk] = local
	})
	var out []moft.Oid
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// --- Type 7: trajectory queries (interpolation) ----------------------

// Trajectories returns (and caches) the linear-interpolation
// trajectory of every object in the table. The returned map is
// shared with the cache; callers must not mutate it.
func (e *Engine) Trajectories(table string) (map[moft.Oid]*traj.LIT, error) {
	tc, err := e.table(table)
	if err != nil {
		return nil, err
	}
	return tc.lits, nil
}

// table returns the table's cache unit, building it single-flight on
// first use: concurrent queries against a cold table interpolate its
// trajectories exactly once, with every caller waiting on the same
// build.
func (e *Engine) table(table string) (*tableCache, error) {
	e.mu.RLock()
	tc := e.litCache[table]
	e.mu.RUnlock()
	if tc == nil {
		e.mu.Lock()
		if tc = e.litCache[table]; tc == nil {
			tc = &tableCache{built: make(chan struct{})}
			e.litCache[table] = tc
		}
		e.mu.Unlock()
	}
	met := e.metrics()
	if tc.isBuilt() && tc.err == nil {
		met.LitCacheHits.Inc()
	} else {
		met.LitCacheMisses.Inc()
	}
	builder := false
	tc.once.Do(func() {
		tc.build(e, table)
		builder = true
	})
	if tc.err != nil {
		// Drop the failed entry so a later call can retry.
		e.mu.Lock()
		if e.litCache[table] == tc {
			delete(e.litCache, table)
		}
		e.mu.Unlock()
		return nil, tc.err
	}
	if builder {
		e.mu.Lock()
		e.updateCacheGaugesLocked()
		e.mu.Unlock()
	}
	return tc, nil
}

// updateCacheGaugesLocked re-derives this engine's litCache gauge
// contribution from the built entries and applies the delta, so
// gauges stay exact across builds, invalidations and resets. Caller
// holds e.mu.
func (e *Engine) updateCacheGaugesLocked() {
	tables, objects := 0, 0
	for _, tc := range e.litCache {
		if tc.isBuilt() && tc.err == nil {
			tables++
			objects += len(tc.lits)
		}
	}
	met := e.metrics()
	met.LitCacheTables.Add(int64(tables - e.accTables))
	met.LitCacheObjects.Add(int64(objects - e.accObjects))
	e.accTables, e.accObjects = tables, objects
}

// InvalidateTrajectories drops every cache derived from the table —
// trajectories, the prefilter R-tree and memoized intervals (call
// after mutating the MOFT). Queries already in flight may still
// answer from the dropped generation.
func (e *Engine) InvalidateTrajectories(table string) {
	e.mu.Lock()
	tc := e.litCache[table]
	delete(e.litCache, table)
	e.updateCacheGaugesLocked()
	e.mu.Unlock()
	if tc != nil {
		tc.drainIntervals(e.metrics())
	}
}

// ResetCache drops every cached table. The caches grow without bound
// as distinct (possibly derived) tables and polygons are queried;
// long-lived processes can call this to reclaim the memory.
func (e *Engine) ResetCache() {
	e.mu.Lock()
	old := e.litCache
	e.litCache = make(map[string]*tableCache)
	e.updateCacheGaugesLocked()
	e.mu.Unlock()
	for _, tc := range old {
		tc.drainIntervals(e.metrics())
	}
}

// CacheStats reports the current litCache footprint: the number of
// cached tables and the total number of cached object trajectories.
func (e *Engine) CacheStats() (tables, objects int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, tc := range e.litCache {
		if tc.isBuilt() && tc.err == nil {
			tables++
			objects += len(tc.lits)
		}
	}
	return tables, objects
}

// ObjectsPassingThrough returns the objects whose interpolated
// trajectory intersects pg at some time in iv (interpolation-aware
// semantics; the paper's O6 counts here even though it was never
// sampled inside).
//
//moglint:deterministic
func (e *Engine) ObjectsPassingThrough(table string, pg geom.Polygon, iv timedim.Interval) ([]moft.Oid, error) {
	e.metrics().Query(7).Inc()
	tc, err := e.table(table)
	if err != nil {
		return nil, err
	}
	ivmap := e.polygonIntervals(tc, pg)
	out := make([]moft.Oid, 0, len(ivmap))
	for oid, ivs := range ivmap {
		for _, ti := range ivs {
			if ti.Lo <= float64(iv.Hi) && float64(iv.Lo) <= ti.Hi {
				out = append(out, oid)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// ObjectsSampledInside returns the objects with at least one raw
// sample in pg during iv (the sample-only counterpart of
// ObjectsPassingThrough; the two differ exactly on objects like O6).
// Grid-accelerated when the pre-aggregated sample grid is enabled
// (the default); results are identical either way.
//
//moglint:deterministic
func (e *Engine) ObjectsSampledInside(table string, pg geom.Polygon, iv timedim.Interval) ([]moft.Oid, error) {
	e.metrics().Query(7).Inc()
	tbl, err := e.ctx.Table(table)
	if err != nil {
		return nil, err
	}
	if e.gridEnabled() {
		g, err := e.sampleGrid(table)
		if err != nil {
			return nil, err
		}
		out := g.ObjectsSampled(pg, int64(iv.Lo), int64(iv.Hi), e.metrics())
		if e.gridVerify.Load() {
			out = e.checkOids(out, e.objectsSampledInsideScan(tbl, pg, iv))
		}
		if out == nil {
			out = []moft.Oid{}
		}
		return out, nil
	}
	return e.objectsSampledInsideScan(tbl, pg, iv), nil
}

// objectsSampledInsideScan is the unaccelerated ObjectsSampledInside:
// one pass over the columnar arrays, short-circuiting each object at
// its first in-window in-polygon sample.
func (e *Engine) objectsSampledInsideScan(tbl *moft.Table, pg geom.Polygon, iv timedim.Interval) []moft.Oid {
	cols := tbl.Columns()
	lo, hi := int64(iv.Lo), int64(iv.Hi)
	out := make([]moft.Oid, 0)
	scanned := int64(0)
	for i := 0; i < cols.NumObjects(); i++ {
		rlo, rhi := cols.ObjectRange(i)
		for r := rlo; r < rhi; r++ {
			if cols.T[r] < lo || cols.T[r] > hi {
				continue
			}
			scanned++
			if pg.ContainsPoint(geom.Pt(cols.X[r], cols.Y[r])) {
				out = append(out, cols.Oids[i])
				break
			}
		}
	}
	e.metrics().MOFTTuplesScanned.Add(scanned)
	return out
}

// CountSamplesInside returns the number of MOFT samples positioned
// inside pg during iv — the polygon aggregate behind the motivating
// query (Remark 1: bus samples in low-income neighborhoods per hour).
// Grid-accelerated when the pre-aggregated sample grid is enabled
// (the default); results are identical either way.
//
//moglint:deterministic
func (e *Engine) CountSamplesInside(table string, pg geom.Polygon, iv timedim.Interval) (int, error) {
	e.metrics().Query(4).Inc()
	tbl, err := e.ctx.Table(table)
	if err != nil {
		return 0, err
	}
	if e.gridEnabled() {
		g, err := e.sampleGrid(table)
		if err != nil {
			return 0, err
		}
		n := g.CountSamples(pg, int64(iv.Lo), int64(iv.Hi), e.metrics())
		if e.gridVerify.Load() {
			if slow := e.countSamplesScan(tbl, pg, iv); slow != n {
				e.metrics().AggGridMismatches.Inc()
				return slow, nil
			}
		}
		return n, nil
	}
	return e.countSamplesScan(tbl, pg, iv), nil
}

// countSamplesScan is the unaccelerated CountSamplesInside: a full
// columnar scan with a per-sample point-in-polygon test.
func (e *Engine) countSamplesScan(tbl *moft.Table, pg geom.Polygon, iv timedim.Interval) int {
	cols := tbl.Columns()
	lo, hi := int64(iv.Lo), int64(iv.Hi)
	n := 0
	for r := 0; r < cols.Len(); r++ {
		if cols.T[r] < lo || cols.T[r] > hi {
			continue
		}
		if pg.ContainsPoint(geom.Pt(cols.X[r], cols.Y[r])) {
			n++
		}
	}
	e.metrics().MOFTTuplesScanned.Add(int64(cols.Len()))
	return n
}

// clampTotal intersects the intervals with the query window [lo, hi]
// and returns the total remaining duration plus whether any interval
// touches the window at all (a tangential graze touches with duration
// 0; both Type-7 duration queries share these boundary semantics).
func clampTotal(ivs []traj.TimeInterval, lo, hi float64) (sum float64, touched bool) {
	for _, ti := range ivs {
		a, b := ti.Lo, ti.Hi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b >= a {
			sum += b - a
			touched = true
		}
	}
	return sum, touched
}

// TimeSpentInside returns, per object, the total interpolated time
// (seconds) spent inside pg within iv — the paper's Q5 ("total amount
// of time spent continuously by cars in Antwerp"). An object appears
// in the result iff its interpolated trajectory is inside pg
// (boundary included) at some instant of iv; a trajectory that only
// grazes the boundary appears with duration 0, symmetric with
// ObjectsEverWithinRadius.
//
//moglint:deterministic
func (e *Engine) TimeSpentInside(table string, pg geom.Polygon, iv timedim.Interval) (map[moft.Oid]float64, error) {
	e.metrics().Query(7).Inc()
	tc, err := e.table(table)
	if err != nil {
		return nil, err
	}
	ivmap := e.polygonIntervals(tc, pg)
	out := make(map[moft.Oid]float64, len(ivmap))
	for oid, ivs := range ivmap {
		if sum, touched := clampTotal(ivs, float64(iv.Lo), float64(iv.Hi)); touched {
			out[oid] = sum
		}
	}
	return out, nil
}

// ObjectsEverWithinRadius returns objects whose interpolated
// trajectory comes within distance r of center during iv, with the
// total time spent within (the paper's Q6, interpolated variant). An
// object appears iff its trajectory is within distance r at some
// instant of iv; a trajectory exactly tangent to the circle appears
// with duration 0, symmetric with TimeSpentInside.
//
//moglint:deterministic
func (e *Engine) ObjectsEverWithinRadius(table string, center geom.Point, r float64, iv timedim.Interval) (map[moft.Oid]float64, error) {
	e.metrics().Query(7).Inc()
	tc, err := e.table(table)
	if err != nil {
		return nil, err
	}
	met := e.metrics()
	box := geom.BBox{MinX: center.X - r, MinY: center.Y - r, MaxX: center.X + r, MaxY: center.Y + r}
	cand := tc.candidates(met, box)
	workers := e.workerCount(len(cand))
	parts := make([]map[moft.Oid]float64, workers)
	forChunks(workers, len(cand), func(chunk, lo, hi int) {
		local := make(map[moft.Oid]float64)
		for _, oid := range cand[lo:hi] {
			ivs := tc.lits[oid].WithinRadiusIntervals(center, r)
			if sum, touched := clampTotal(ivs, float64(iv.Lo), float64(iv.Hi)); touched {
				local[oid] = sum
			}
		}
		parts[chunk] = local
	})
	out := make(map[moft.Oid]float64)
	for _, local := range parts {
		for oid, sum := range local {
			out[oid] = sum
		}
	}
	return out, nil
}

// CountPassingThroughGeometries counts the objects whose interpolated
// trajectory intersects at least one of the given polygons of a layer
// during iv. This is the Piet-QL moving-objects part of Section 5:
// the ids come from the geometric sub-query ("cities crossed by a
// river containing at least one store"), and each object's
// consecutive sample segments are intersected with those cities.
//
//moglint:deterministic
func (e *Engine) CountPassingThroughGeometries(table, layerName string, ids []layer.Gid, iv timedim.Interval) (int, error) {
	e.metrics().Query(7).Inc()
	l, ok := e.ctx.GIS().Layer(layerName)
	if !ok {
		return 0, fmt.Errorf("core: unknown layer %q", layerName)
	}
	pgs := make([]geom.Polygon, len(ids))
	for i, id := range ids {
		pg, ok := l.Polygon(id)
		if !ok {
			return 0, fmt.Errorf("core: layer %q has no polygon %d", layerName, id)
		}
		pgs[i] = pg
	}
	tc, err := e.table(table)
	if err != nil {
		return 0, err
	}
	// Per-polygon interval maps (cached and prefiltered) replace the
	// object × polygon double loop: an object counts once if any
	// polygon's intervals touch the window.
	hit := make(map[moft.Oid]bool)
	for _, pg := range pgs {
		for oid, ivs := range e.polygonIntervals(tc, pg) {
			if hit[oid] {
				continue
			}
			for _, ti := range ivs {
				if ti.Lo <= float64(iv.Hi) && float64(iv.Lo) <= ti.Hi {
					hit[oid] = true
					break
				}
			}
		}
	}
	return len(hit), nil
}

// --- Type 8: aggregation over one trajectory -------------------------

// TrajectoryStats summarizes one object's interpolated trajectory.
type TrajectoryStats struct {
	Oid      moft.Oid
	Samples  int
	Length   float64 // image length
	Duration float64 // seconds from first to last sample
	AvgSpeed float64 // Length / Duration
	MaxSpeed float64 // maximum leg speed
	Closed   bool
}

// TrajectoryAggregate computes the Type-8 aggregation for one object.
func (e *Engine) TrajectoryAggregate(table string, oid moft.Oid) (TrajectoryStats, error) {
	e.metrics().Query(8).Inc()
	lits, err := e.Trajectories(table)
	if err != nil {
		return TrajectoryStats{}, err
	}
	l, ok := lits[oid]
	if !ok {
		return TrajectoryStats{}, fmt.Errorf("core: no trajectory for object O%d", oid)
	}
	s := l.Sample()
	st := TrajectoryStats{
		Oid:      oid,
		Samples:  len(s),
		Length:   s.Length(),
		Duration: float64(s.TimeDomain().Duration()),
		MaxSpeed: l.MaxSpeed(),
		Closed:   s.IsClosed(),
	}
	if st.Duration > 0 {
		st.AvgSpeed = st.Length / st.Duration
	}
	return st, nil
}
