// Package core is the paper's primary contribution in executable
// form: a spatio-temporal aggregation engine that integrates GIS
// dimensions, OLAP dimensions (including Time) and moving-object fact
// tables, and evaluates the eight query classes of Section 3.1:
//
//  1. spatial aggregation (geometric integration, Definition 4),
//  2. spatial aggregation with numeric information in the region
//     condition (summable rewriting),
//  3. pure trajectory-sample aggregation over FM and Time,
//  4. trajectory samples under geometric conditions (region C as a
//     first-order formula evaluated to a finite (Oid, t, ...) set),
//  5. regions whose condition itself contains an aggregation
//     ("second-order" aggregation),
//  6. the trajectory as a static spatial object at an instant,
//  7. trajectory queries requiring linear interpolation, and
//  8. aggregation over a single object's trajectory.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mogis/internal/agggrid"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/qerr"
	"mogis/internal/telemetry"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

// Engine evaluates spatio-temporal aggregate queries against a model
// context. An Engine is safe for concurrent use: the per-table caches
// (trajectories, spatial prefilter, interval cache) are built
// single-flight behind a read-write lock, and the trajectory query
// hot path fans out over a worker pool (see cache.go). The model
// context itself must not be mutated while queries are in flight —
// invalidate the affected table's caches after MOFT mutations.
//
// Every query entry point takes a context.Context first and observes
// cancellation, deadlines and the resource Budget attached with
// WithBudget at cooperative checkpoints (scan strides, fan-out
// chunks, cache builds): a cancel returns context.Canceled /
// DeadlineExceeded within one stride, partial work is discarded, and
// cache state is left as-if-never-started so an immediate retry is
// bit-identical to an uncancelled run. Worker panics are isolated
// into *qerr.QueryPanicError; the engine stays usable.
type Engine struct {
	// mctx is the model context queries evaluate against (distinct
	// from the per-query context.Context threading through the
	// methods).
	mctx *fo.Context
	// met receives engine metrics (cache hits, query-type counts).
	met atomic.Pointer[obs.Metrics]
	// tel, when set, receives one telemetry.QueryRecord per completed
	// query. Nil disables recording entirely (the begin/done bracket
	// then takes no clock reads); unset engines fall back to the
	// process-wide telemetry.Default collector.
	tel      atomic.Pointer[telemetry.Collector]
	telIsSet atomic.Bool

	mu sync.RWMutex
	// litCache holds the per-table cache units (LITs, prefilter
	// R-tree, interval cache), built single-flight.
	litCache map[string]*tableCache
	// accTables/accObjects are this engine's last contribution to the
	// shared LitCacheTables/LitCacheObjects gauges, so several engines
	// can account against one metrics bundle.
	accTables, accObjects int

	// workers bounds the per-query fan-out (0 → GOMAXPROCS).
	workers atomic.Int32
	// intervalCap is the interval-cache polygon cap (0 → default,
	// negative → caching disabled).
	intervalCap atomic.Int32
	// gridCells configures the pre-aggregated sample grid (0 → default
	// auto-sizing, n > 0 → n×n cells, negative → grid disabled).
	gridCells atomic.Int32
	// gridVerify cross-checks every grid-accelerated result against
	// the slow path (the exact-identity gate).
	gridVerify atomic.Bool
	// timeBuckets configures the grid's per-cell temporal index
	// (0 → auto-size from extent, density and telemetry's observed
	// query windows, n > 0 → n buckets per cell, negative → temporal
	// index disabled).
	timeBuckets atomic.Int32

	// isShard marks an engine owned by a ShardedEngine coordinator: its
	// begin brackets chain to the coordinator's qctl (shared budget
	// counters, no per-shard telemetry record) and countQuery skips the
	// per-type counters so a scattered query counts once, not per shard.
	isShard bool
}

// New creates an engine over the model context.
func New(mctx *fo.Context) *Engine {
	e := &Engine{
		mctx:     mctx,
		litCache: make(map[string]*tableCache),
	}
	e.met.Store(obs.Std)
	return e
}

// Context returns the underlying model context.
func (e *Engine) Context() *fo.Context { return e.mctx }

// SetMetrics redirects the engine's metrics to m (nil restores the
// process-wide obs.Std bundle). Useful for isolating counts in tests.
func (e *Engine) SetMetrics(m *obs.Metrics) {
	if m == nil {
		m = obs.Std
	}
	e.met.Store(m)
}

// metrics returns the engine's current instrument bundle.
func (e *Engine) metrics() *obs.Metrics { return e.met.Load() }

// countQuery bumps the per-type query counter — once per logical
// query: shard engines skip it (the coordinator counts the scattered
// query exactly once).
func (e *Engine) countQuery(n int) {
	if e.isShard {
		return
	}
	e.metrics().Query(n).Inc()
}

// SetTelemetry pins the engine's telemetry collector. A nil collector
// disables recording for this engine even when a process-wide default
// exists; engines that never call SetTelemetry follow
// telemetry.Default.
func (e *Engine) SetTelemetry(c *telemetry.Collector) {
	e.tel.Store(c)
	e.telIsSet.Store(true)
}

// telemetry resolves the collector queries record to (nil = off).
func (e *Engine) telemetry() *telemetry.Collector {
	if e.telIsSet.Load() {
		return e.tel.Load()
	}
	return telemetry.Default()
}

// SetWorkers bounds the worker pool of the trajectory query fan-out:
// 1 forces the serial path, 0 restores the default GOMAXPROCS sizing.
// Benchmarks use it to sweep worker counts.
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers.Store(int32(n))
}

// SetIntervalCacheCap bounds the number of distinct polygons whose
// inside-intervals are memoized per table (the interval cache);
// n <= 0 disables the cache entirely, 0 < n sets the cap (default
// 256). Exceeding the cap clears the table's memoized set whole.
func (e *Engine) SetIntervalCacheCap(n int) {
	if n <= 0 {
		e.intervalCap.Store(-1)
		return
	}
	e.intervalCap.Store(int32(n))
}

// intervalCacheCap resolves the configured cap (0 = disabled).
func (e *Engine) intervalCacheCap() int {
	c := e.intervalCap.Load()
	switch {
	case c == 0:
		return defaultIntervalCacheCap
	case c < 0:
		return 0
	default:
		return int(c)
	}
}

// SetAggGrid configures the pre-aggregated sample grid that
// accelerates polygon aggregates over raw samples: n < 0 disables the
// grid (queries take the scan path), 0 restores the default
// auto-sizing (~64 samples per cell), n > 0 forces an n×n grid. The
// setting applies to grids built afterwards; call ResetCache or
// InvalidateTrajectories to rebuild an existing grid.
func (e *Engine) SetAggGrid(n int) {
	if n < 0 {
		n = -1
	}
	e.gridCells.Store(int32(n))
}

// gridEnabled reports whether sample queries may use the grid.
func (e *Engine) gridEnabled() bool { return e.gridCells.Load() >= 0 }

// SetTimeBuckets configures the per-cell temporal index of the sample
// grid: n < 0 disables it (non-vacuous windows fall back to per-row
// time filters), 0 restores adaptive sizing (seeded from the table's
// time extent and sample density, refined by telemetry's observed
// per-op query windows), n > 0 forces n buckets per cell. Like
// SetAggGrid, the setting applies to grids built afterwards.
func (e *Engine) SetTimeBuckets(n int) {
	if n < 0 {
		n = -1
	}
	e.timeBuckets.Store(int32(n))
}

// SetGridVerify toggles verify mode: every grid-accelerated result is
// recomputed on the slow path and compared; a divergence increments
// AggGridMismatches and the slow result wins. For tests and gates.
func (e *Engine) SetGridVerify(on bool) { e.gridVerify.Store(on) }

// sampleGrid returns the table's pre-aggregated grid, creating the
// cache entry if needed. Unlike table(), it never triggers the LIT
// build — sample-only queries don't pay for interpolation.
func (e *Engine) sampleGrid(ctx context.Context, table string) (*agggrid.Grid, error) {
	tc := e.tableEntry(table)
	g, err := tc.aggGrid(ctx, e, table)
	if err != nil {
		// Drop the failed entry on permanent errors (unknown table) so
		// a later call can retry after the table appears; transient
		// aborts (cancel, budget, fault, panic) keep the entry — its
		// buildUnit already reset for retry.
		e.dropEntryOnPermanent(table, tc, err)
		return nil, err
	}
	return g, nil
}

// --- Type 1: spatial aggregation ------------------------------------

// GeometricAggregate evaluates a Definition-4 geometric aggregation.
func (e *Engine) GeometricAggregate(ctx context.Context, a gis.Aggregation) (v float64, err error) {
	qc, ctx, done := e.begin(ctx, "geometric_aggregate", "")
	defer done(&err)
	e.countQuery(1)
	if err := qc.step(ctx); err != nil {
		return 0, err
	}
	return a.Evaluate()
}

// --- Type 2: spatial aggregation over numeric conditions ------------

// SummableOverIDs evaluates the summable rewriting Σ_{g∈ids} measure(g)
// against a GIS fact table.
func (e *Engine) SummableOverIDs(ctx context.Context, ids []layer.Gid, ft *gis.FactTable, measure string) (v float64, err error) {
	qc, ctx, done := e.begin(ctx, "summable_over_ids", "")
	defer done(&err)
	e.countQuery(2)
	if err := qc.step(ctx); err != nil {
		return 0, err
	}
	return gis.SummableFromFact(ids, ft, measure).Evaluate()
}

// --- Types 3, 4: region C as a first-order formula -------------------

// RegionC evaluates the formula to the paper's spatio-temporal
// structure C: a finite relation over the named output variables,
// e.g. (Oid, t) pairs.
func (e *Engine) RegionC(ctx context.Context, f fo.Formula, out []fo.Var) (rel *fo.Relation, err error) {
	qc, ctx, done := e.begin(ctx, "region_c", "")
	defer done(&err)
	e.countQuery(3)
	return e.regionC(ctx, qc, f, out)
}

// regionC is RegionC without the Type-3 counter and control bracket,
// for internal reuse by the Type-4 entry points. The first-order
// evaluator itself is not chunked; cancellation is observed before
// and after it.
func (e *Engine) regionC(ctx context.Context, qc *qctl, f fo.Formula, out []fo.Var) (*fo.Relation, error) {
	if err := qc.step(ctx); err != nil {
		return nil, err
	}
	rel, err := fo.Eval(e.mctx, f, out)
	if err != nil {
		return nil, err
	}
	if err := qc.step(ctx); err != nil {
		return nil, err
	}
	if err := qc.addResults(int64(rel.Len())); err != nil {
		return nil, err
	}
	return rel, nil
}

// AggregateRegion evaluates region C and applies the γ operator of
// Definition 7: Q = γ_{fn,measure,groupBy}(C).
func (e *Engine) AggregateRegion(ctx context.Context, f fo.Formula, out []fo.Var, fn olap.AggFunc, measure fo.Var, groupBy []fo.Var) (res *olap.AggResult, err error) {
	qc, ctx, done := e.begin(ctx, "aggregate_region", "")
	defer done(&err)
	e.countQuery(4)
	rel, err := e.regionC(ctx, qc, f, out)
	if err != nil {
		return nil, err
	}
	sp := e.mctx.Tracer().Start("aggregate_group")
	defer sp.End()
	res, err = rel.GroupAggregate(fn, measure, groupBy)
	if err == nil {
		sp.SetCount("groups", int64(len(res.Rows)))
	}
	return res, err
}

// CountRegion evaluates region C and returns its cardinality — the
// most common aggregation ("number of buses", "number of cars").
func (e *Engine) CountRegion(ctx context.Context, f fo.Formula, out []fo.Var) (n int, err error) {
	qc, ctx, done := e.begin(ctx, "count_region", "")
	defer done(&err)
	e.countQuery(4)
	rel, err := e.regionC(ctx, qc, f, out)
	if err != nil {
		return 0, err
	}
	sp := e.mctx.Tracer().Start("aggregate_count")
	sp.SetCount("tuples", int64(rel.Len()))
	sp.End()
	return rel.Len(), nil
}

// RatePerHour divides a region-C cardinality by a time span in hours,
// the "per hour" normalization of the motivating query (Remark 1:
// 4 tuples over a 3-hour morning span give 4/3).
func RatePerHour(count int, hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	return float64(count) / hours
}

// --- Type 5: second-order regions ------------------------------------

// FilterGeometriesByAggregate returns the geometry ids of the given
// kind in the given layer for which the inner aggregate satisfies op
// against threshold. This realizes regions such as "neighborhoods
// where the number of people with low income exceeds 50,000": the
// inner aggregation runs per geometry and gates its membership in C.
func (e *Engine) FilterGeometriesByAggregate(ctx context.Context, layerName string, kind layer.Kind,
	inner func(layer.Gid) (float64, error), op fo.CmpOp, threshold float64) (out []layer.Gid, err error) {
	qc, ctx, done := e.begin(ctx, "filter_geometries_by_aggregate", "")
	defer done(&err)
	e.countQuery(5)
	l, ok := e.mctx.GIS().Layer(layerName)
	if !ok {
		return nil, fmt.Errorf("core: unknown layer %q", layerName)
	}
	for _, id := range l.IDs(kind) {
		if err := qc.step(ctx); err != nil {
			return nil, err
		}
		v, err := inner(id)
		if err != nil {
			return nil, fmt.Errorf("core: inner aggregate for %s %d: %w", kind, id, err)
		}
		keep := false
		switch op {
		case fo.LT:
			keep = v < threshold
		case fo.LE:
			keep = v <= threshold
		case fo.EQ:
			keep = v == threshold
		case fo.NE:
			keep = v != threshold
		case fo.GE:
			keep = v >= threshold
		case fo.GT:
			keep = v > threshold
		}
		if keep {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// --- Type 6: the trajectory as a static object at an instant ---------

// ObjectsSampledAt returns the distinct objects with a sample exactly
// at instant t whose position lies in pg (the sample-level semantics
// of query Q4). Grid-accelerated when the pre-aggregated sample grid
// is enabled (the default); results are identical either way.
//
//moglint:deterministic
func (e *Engine) ObjectsSampledAt(ctx context.Context, table string, t timedim.Instant, pg geom.Polygon) (out []moft.Oid, err error) {
	qc, ctx, done := e.begin(ctx, "objects_sampled_at", table)
	defer done(&err)
	e.countQuery(6)
	tbl, err := e.mctx.Table(table)
	if err != nil {
		return nil, err
	}
	if e.gridEnabled() {
		g, err := e.sampleGrid(ctx, table)
		if err != nil {
			return nil, err
		}
		if err := qc.step(ctx); err != nil {
			return nil, err
		}
		out, gst := g.ObjectsSampledStats(pg, int64(t), int64(t), e.metrics())
		if err := qc.addRows(ctx, gst.Rows); err != nil {
			return nil, err
		}
		if e.gridVerify.Load() {
			slow, err := e.objectsSampledAtScan(ctx, qc, tbl, t, pg)
			if err != nil {
				return nil, err
			}
			out = e.checkOids(out, slow)
		}
		if err := qc.addResults(int64(len(out))); err != nil {
			return nil, err
		}
		return out, nil
	}
	return e.objectsSampledAtScan(ctx, qc, tbl, t, pg)
}

// objectsSampledAtScan is the unaccelerated ObjectsSampledAt: a
// columnar scan with per-object binary search on the instant.
func (e *Engine) objectsSampledAtScan(ctx context.Context, qc *qctl, tbl *moft.Table, t timedim.Instant, pg geom.Polygon) ([]moft.Oid, error) {
	cols, err := tbl.ColumnsCtx(ctx)
	if err != nil {
		return nil, err
	}
	tt := int64(t)
	var out []moft.Oid
	scanned, pending := int64(0), int64(0)
	defer func() { e.metrics().MOFTTuplesScanned.Add(scanned + pending) }()
	for i := 0; i < cols.NumObjects(); i++ {
		if i%256 == 255 || pending >= checkEvery {
			scanned += pending
			if err := qc.addRows(ctx, pending); err != nil {
				return nil, err
			}
			pending = 0
		}
		lo, hi := cols.ObjectRange(i)
		ts := cols.T[lo:hi]
		j := sort.Search(len(ts), func(k int) bool { return ts[k] >= tt })
		for ; j < len(ts) && ts[j] == tt; j++ {
			pending++
			if pg.ContainsPoint(geom.Pt(cols.X[lo+j], cols.Y[lo+j])) {
				out = append(out, cols.Oids[i])
				if err := qc.addResults(1); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	return out, nil
}

// checkOids is the verify-mode identity gate: on any divergence the
// mismatch counter fires and the slow result wins.
func (e *Engine) checkOids(fast, slow []moft.Oid) []moft.Oid {
	if len(fast) == len(slow) {
		same := true
		for i := range fast {
			if fast[i] != slow[i] {
				same = false
				break
			}
		}
		if same {
			return fast
		}
	}
	e.metrics().AggGridMismatches.Inc()
	return slow
}

// ObjectsInterpolatedAt returns the objects whose interpolated
// position at instant t lies in pg, even between samples.
//
//moglint:deterministic
func (e *Engine) ObjectsInterpolatedAt(ctx context.Context, table string, t timedim.Instant, pg geom.Polygon) (out []moft.Oid, err error) {
	qc, ctx, done := e.begin(ctx, "objects_interpolated_at", table)
	defer done(&err)
	e.countQuery(6)
	tc, err := e.table(ctx, qc, table)
	if err != nil {
		return nil, err
	}
	cand, err := tc.candidates(ctx, e.metrics(), pg.BBox())
	if err != nil {
		return nil, err
	}
	workers := e.workerCount(len(cand))
	parts := make([][]moft.Oid, workers)
	err = forChunks(ctx, workers, len(cand), func(chunk, lo, hi int) error {
		var local []moft.Oid
		for i, oid := range cand[lo:hi] {
			if i%256 == 255 {
				if err := qc.addRows(ctx, 256); err != nil {
					return err
				}
			}
			if p, ok := tc.lits[oid].AtInstant(t); ok && pg.ContainsPoint(p) {
				local = append(local, oid)
			}
		}
		parts[chunk] = local
		return qc.addResults(int64(len(local)))
	})
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// --- Type 7: trajectory queries (interpolation) ----------------------

// Trajectories returns (and caches) the linear-interpolation
// trajectory of every object in the table. The returned map is
// shared with the cache; callers must not mutate it.
func (e *Engine) Trajectories(ctx context.Context, table string) (lits map[moft.Oid]*traj.LIT, err error) {
	qc, ctx, done := e.begin(ctx, "trajectories", table)
	defer done(&err)
	tc, err := e.table(ctx, qc, table)
	if err != nil {
		return nil, err
	}
	return tc.lits, nil
}

// tableEntry returns (creating if needed) the table's cache entry
// without triggering any build.
func (e *Engine) tableEntry(table string) *tableCache {
	e.mu.RLock()
	tc := e.litCache[table]
	e.mu.RUnlock()
	if tc == nil {
		e.mu.Lock()
		if tc = e.litCache[table]; tc == nil {
			tc = &tableCache{}
			e.litCache[table] = tc
		}
		e.mu.Unlock()
	}
	return tc
}

// dropEntryOnPermanent removes a cache entry whose build failed with
// a permanent error (unknown table, malformed samples), so a later
// call can retry after the table appears. Transient aborts — cancel,
// deadline, budget, injected fault, recovered panic — keep the entry:
// its buildUnit already reset, and any sibling cache (e.g. a built
// grid next to an aborted LIT build) survives.
func (e *Engine) dropEntryOnPermanent(table string, tc *tableCache, err error) {
	if qerr.IsCancel(err) || qerr.IsPanic(err) || IsBudget(err) || isInjected(err) {
		return
	}
	e.mu.Lock()
	if e.litCache[table] == tc {
		delete(e.litCache, table)
	}
	e.mu.Unlock()
}

// table returns the table's cache unit, building it single-flight on
// first use: concurrent queries against a cold table interpolate its
// trajectories exactly once, with every caller waiting on the same
// build. A build abandoned mid-flight (cancel, budget, fault) resets
// its unit so the next caller retries.
func (e *Engine) table(ctx context.Context, qc *qctl, table string) (*tableCache, error) {
	tc := e.tableEntry(table)
	met := e.metrics()
	hit := tc.lit.ok()
	qc.cacheHit(hit)
	if hit {
		met.LitCacheHits.Inc()
	} else {
		met.LitCacheMisses.Inc()
	}
	builtNow, err := tc.lit.run(ctx, "core/lit-build", func() error {
		return tc.build(ctx, e, table)
	})
	if err != nil {
		e.dropEntryOnPermanent(table, tc, err)
		return nil, err
	}
	if builtNow {
		e.mu.Lock()
		e.updateCacheGaugesLocked()
		e.mu.Unlock()
	}
	return tc, nil
}

// updateCacheGaugesLocked re-derives this engine's litCache gauge
// contribution from the built entries and applies the delta, so
// gauges stay exact across builds, invalidations and resets. Caller
// holds e.mu.
func (e *Engine) updateCacheGaugesLocked() {
	tables, objects := 0, 0
	for _, tc := range e.litCache {
		if tc.lit.ok() {
			tables++
			objects += len(tc.lits)
		}
	}
	met := e.metrics()
	met.LitCacheTables.Add(int64(tables - e.accTables))
	met.LitCacheObjects.Add(int64(objects - e.accObjects))
	e.accTables, e.accObjects = tables, objects
}

// InvalidateTrajectories drops every cache derived from the table —
// trajectories, the prefilter R-tree and memoized intervals (call
// after mutating the MOFT). Queries already in flight may still
// answer from the dropped generation.
func (e *Engine) InvalidateTrajectories(table string) {
	e.mu.Lock()
	tc := e.litCache[table]
	delete(e.litCache, table)
	e.updateCacheGaugesLocked()
	e.mu.Unlock()
	if tc != nil {
		tc.drainIntervals(e.metrics())
	}
}

// ResetCache drops every cached table. The caches grow without bound
// as distinct (possibly derived) tables and polygons are queried;
// long-lived processes can call this to reclaim the memory.
func (e *Engine) ResetCache() {
	e.mu.Lock()
	old := e.litCache
	e.litCache = make(map[string]*tableCache)
	e.updateCacheGaugesLocked()
	e.mu.Unlock()
	for _, tc := range old {
		tc.drainIntervals(e.metrics())
	}
}

// CacheStats reports the current litCache footprint: the number of
// cached tables and the total number of cached object trajectories.
func (e *Engine) CacheStats() (tables, objects int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, tc := range e.litCache {
		if tc.lit.ok() {
			tables++
			objects += len(tc.lits)
		}
	}
	return tables, objects
}

// ObjectsPassingThrough returns the objects whose interpolated
// trajectory intersects pg at some time in iv (interpolation-aware
// semantics; the paper's O6 counts here even though it was never
// sampled inside).
//
//moglint:deterministic
func (e *Engine) ObjectsPassingThrough(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (out []moft.Oid, err error) {
	qc, ctx, done := e.begin(ctx, "objects_passing_through", table)
	defer done(&err)
	e.countQuery(7)
	qc.noteWindow(iv)
	// Temporal prefilter: interpolated trajectories live inside the
	// snapshot's sample time extent, so a window strictly disjoint from
	// [minT, maxT] cannot intersect any trajectory — answer empty
	// without building LITs or inside-intervals. Exact even for the
	// boundary-graze semantics: clampTotal's closed clamp requires the
	// window to touch the trajectory's time domain. Gated on the grid
	// knob so SetAggGrid(-1) still measures the pure scan path.
	if e.gridEnabled() {
		tbl, terr := e.mctx.Table(table)
		if terr != nil {
			return nil, terr
		}
		cols, cerr := tbl.ColumnsCtx(ctx)
		if cerr != nil {
			return nil, cerr
		}
		if lo, hi, ok := cols.TimeSpan(); ok && (iv.Hi < lo || iv.Lo > hi) {
			e.metrics().AggGridTimeSkips.Inc()
			if e.gridVerify.Load() {
				slow, serr := e.objectsPassingThroughFull(ctx, qc, table, pg, iv)
				if serr != nil {
					return nil, serr
				}
				return e.checkOids(nil, slow), nil
			}
			return nil, nil
		}
	}
	return e.objectsPassingThroughFull(ctx, qc, table, pg, iv)
}

// objectsPassingThroughFull is ObjectsPassingThrough past the temporal
// prefilter: inside-intervals intersected with the query window.
func (e *Engine) objectsPassingThroughFull(ctx context.Context, qc *qctl, table string, pg geom.Polygon, iv timedim.Interval) (out []moft.Oid, err error) {
	tc, err := e.table(ctx, qc, table)
	if err != nil {
		return nil, err
	}
	ivmap, err := e.polygonIntervals(ctx, qc, tc, pg)
	if err != nil {
		return nil, err
	}
	out = make([]moft.Oid, 0, len(ivmap))
	scanned := 0
	for oid, ivs := range ivmap {
		if scanned%checkEvery == 0 {
			if err := qc.step(ctx); err != nil {
				return nil, err
			}
		}
		scanned++
		for _, ti := range ivs {
			if ti.Lo <= float64(iv.Hi) && float64(iv.Lo) <= ti.Hi {
				out = append(out, oid)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// ObjectsSampledInside returns the objects with at least one raw
// sample in pg during iv (the sample-only counterpart of
// ObjectsPassingThrough; the two differ exactly on objects like O6).
// Grid-accelerated when the pre-aggregated sample grid is enabled
// (the default); results are identical either way.
//
//moglint:deterministic
func (e *Engine) ObjectsSampledInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (out []moft.Oid, err error) {
	qc, ctx, done := e.begin(ctx, "objects_sampled_inside", table)
	defer done(&err)
	e.countQuery(7)
	qc.noteWindow(iv)
	tbl, err := e.mctx.Table(table)
	if err != nil {
		return nil, err
	}
	if e.gridEnabled() {
		g, err := e.sampleGrid(ctx, table)
		if err != nil {
			return nil, err
		}
		if err := qc.step(ctx); err != nil {
			return nil, err
		}
		out, gst := g.ObjectsSampledStats(pg, int64(iv.Lo), int64(iv.Hi), e.metrics())
		if err := qc.addRows(ctx, gst.Rows); err != nil {
			return nil, err
		}
		if e.gridVerify.Load() {
			slow, err := e.objectsSampledInsideScan(ctx, qc, tbl, pg, iv)
			if err != nil {
				return nil, err
			}
			out = e.checkOids(out, slow)
		}
		if err := qc.addResults(int64(len(out))); err != nil {
			return nil, err
		}
		if out == nil {
			out = []moft.Oid{}
		}
		return out, nil
	}
	return e.objectsSampledInsideScan(ctx, qc, tbl, pg, iv)
}

// objectsSampledInsideScan is the unaccelerated ObjectsSampledInside:
// one pass over the columnar arrays, short-circuiting each object at
// its first in-window in-polygon sample.
func (e *Engine) objectsSampledInsideScan(ctx context.Context, qc *qctl, tbl *moft.Table, pg geom.Polygon, iv timedim.Interval) ([]moft.Oid, error) {
	cols, err := tbl.ColumnsCtx(ctx)
	if err != nil {
		return nil, err
	}
	lo, hi := int64(iv.Lo), int64(iv.Hi)
	out := make([]moft.Oid, 0)
	scanned, pending := int64(0), int64(0)
	defer func() { e.metrics().MOFTTuplesScanned.Add(scanned + pending) }()
	for i := 0; i < cols.NumObjects(); i++ {
		rlo, rhi := cols.ObjectRange(i)
		for r := rlo; r < rhi; r++ {
			if pending >= checkEvery {
				scanned += pending
				if err := qc.addRows(ctx, pending); err != nil {
					return nil, err
				}
				pending = 0
			}
			if cols.T[r] < lo || cols.T[r] > hi {
				continue
			}
			pending++
			if pg.ContainsPoint(geom.Pt(cols.X[r], cols.Y[r])) {
				out = append(out, cols.Oids[i])
				if err := qc.addResults(1); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	return out, nil
}

// CountSamplesInside returns the number of MOFT samples positioned
// inside pg during iv — the polygon aggregate behind the motivating
// query (Remark 1: bus samples in low-income neighborhoods per hour).
// Grid-accelerated when the pre-aggregated sample grid is enabled
// (the default); results are identical either way.
//
//moglint:deterministic
func (e *Engine) CountSamplesInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (n int, err error) {
	qc, ctx, done := e.begin(ctx, "count_samples_inside", table)
	defer done(&err)
	e.countQuery(4)
	qc.noteWindow(iv)
	tbl, err := e.mctx.Table(table)
	if err != nil {
		return 0, err
	}
	if e.gridEnabled() {
		g, err := e.sampleGrid(ctx, table)
		if err != nil {
			return 0, err
		}
		if err := qc.step(ctx); err != nil {
			return 0, err
		}
		n, gst := g.CountSamplesStats(pg, int64(iv.Lo), int64(iv.Hi), e.metrics())
		if err := qc.addRows(ctx, gst.Rows); err != nil {
			return 0, err
		}
		if e.gridVerify.Load() {
			slow, err := e.countSamplesScan(ctx, qc, tbl, pg, iv)
			if err != nil {
				return 0, err
			}
			if slow != n {
				e.metrics().AggGridMismatches.Inc()
				return slow, nil
			}
		}
		return n, nil
	}
	return e.countSamplesScan(ctx, qc, tbl, pg, iv)
}

// countSamplesScan is the unaccelerated CountSamplesInside: a full
// columnar scan with a per-sample point-in-polygon test.
func (e *Engine) countSamplesScan(ctx context.Context, qc *qctl, tbl *moft.Table, pg geom.Polygon, iv timedim.Interval) (int, error) {
	cols, err := tbl.ColumnsCtx(ctx)
	if err != nil {
		return 0, err
	}
	lo, hi := int64(iv.Lo), int64(iv.Hi)
	n := 0
	scanned := int64(0)
	defer func() { e.metrics().MOFTTuplesScanned.Add(scanned) }()
	for r := 0; r < cols.Len(); r++ {
		scanned++
		if scanned%checkEvery == 0 {
			if err := qc.addRows(ctx, checkEvery); err != nil {
				return 0, err
			}
		}
		if cols.T[r] < lo || cols.T[r] > hi {
			continue
		}
		if pg.ContainsPoint(geom.Pt(cols.X[r], cols.Y[r])) {
			n++
		}
	}
	return n, nil
}

// clampTotal intersects the intervals with the query window [lo, hi]
// and returns the total remaining duration plus whether any interval
// touches the window at all (a tangential graze touches with duration
// 0; both Type-7 duration queries share these boundary semantics).
func clampTotal(ivs []traj.TimeInterval, lo, hi float64) (sum float64, touched bool) {
	for _, ti := range ivs {
		a, b := ti.Lo, ti.Hi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b >= a {
			sum += b - a
			touched = true
		}
	}
	return sum, touched
}

// TimeSpentInside returns, per object, the total interpolated time
// (seconds) spent inside pg within iv — the paper's Q5 ("total amount
// of time spent continuously by cars in Antwerp"). An object appears
// in the result iff its interpolated trajectory is inside pg
// (boundary included) at some instant of iv; a trajectory that only
// grazes the boundary appears with duration 0, symmetric with
// ObjectsEverWithinRadius.
//
//moglint:deterministic
func (e *Engine) TimeSpentInside(ctx context.Context, table string, pg geom.Polygon, iv timedim.Interval) (out map[moft.Oid]float64, err error) {
	qc, ctx, done := e.begin(ctx, "time_spent_inside", table)
	defer done(&err)
	e.countQuery(7)
	qc.noteWindow(iv)
	tc, err := e.table(ctx, qc, table)
	if err != nil {
		return nil, err
	}
	ivmap, err := e.polygonIntervals(ctx, qc, tc, pg)
	if err != nil {
		return nil, err
	}
	out = make(map[moft.Oid]float64, len(ivmap))
	scanned := 0
	for oid, ivs := range ivmap {
		if scanned%checkEvery == 0 {
			if err := qc.step(ctx); err != nil {
				return nil, err
			}
		}
		scanned++
		if sum, touched := clampTotal(ivs, float64(iv.Lo), float64(iv.Hi)); touched {
			out[oid] = sum
		}
	}
	return out, nil
}

// ObjectsEverWithinRadius returns objects whose interpolated
// trajectory comes within distance r of center during iv, with the
// total time spent within (the paper's Q6, interpolated variant). An
// object appears iff its trajectory is within distance r at some
// instant of iv; a trajectory exactly tangent to the circle appears
// with duration 0, symmetric with TimeSpentInside.
//
//moglint:deterministic
func (e *Engine) ObjectsEverWithinRadius(ctx context.Context, table string, center geom.Point, r float64, iv timedim.Interval) (out map[moft.Oid]float64, err error) {
	qc, ctx, done := e.begin(ctx, "objects_ever_within_radius", table)
	qc.noteWindow(iv)
	defer done(&err)
	e.countQuery(7)
	tc, err := e.table(ctx, qc, table)
	if err != nil {
		return nil, err
	}
	met := e.metrics()
	box := geom.BBox{MinX: center.X - r, MinY: center.Y - r, MaxX: center.X + r, MaxY: center.Y + r}
	cand, err := tc.candidates(ctx, met, box)
	if err != nil {
		return nil, err
	}
	workers := e.workerCount(len(cand))
	parts := make([]map[moft.Oid]float64, workers)
	err = forChunks(ctx, workers, len(cand), func(chunk, lo, hi int) error {
		local := make(map[moft.Oid]float64)
		rows := int64(0)
		for _, oid := range cand[lo:hi] {
			l := tc.lits[oid]
			if rows += int64(len(l.Sample())); rows >= checkEvery {
				if err := qc.addRows(ctx, rows); err != nil {
					return err
				}
				rows = 0
			}
			ivs := l.WithinRadiusIntervals(center, r)
			if sum, touched := clampTotal(ivs, float64(iv.Lo), float64(iv.Hi)); touched {
				local[oid] = sum
			}
		}
		parts[chunk] = local
		if err := qc.addRows(ctx, rows); err != nil {
			return err
		}
		return qc.addResults(int64(len(local)))
	})
	if err != nil {
		return nil, err
	}
	out = make(map[moft.Oid]float64)
	merged := 0
	for _, local := range parts {
		for oid, sum := range local {
			if merged%checkEvery == 0 {
				if err := qc.step(ctx); err != nil {
					return nil, err
				}
			}
			merged++
			out[oid] = sum
		}
	}
	return out, nil
}

// CountPassingThroughGeometries counts the objects whose interpolated
// trajectory intersects at least one of the given polygons of a layer
// during iv. This is the Piet-QL moving-objects part of Section 5:
// the ids come from the geometric sub-query ("cities crossed by a
// river containing at least one store"), and each object's
// consecutive sample segments are intersected with those cities.
//
//moglint:deterministic
func (e *Engine) CountPassingThroughGeometries(ctx context.Context, table, layerName string, ids []layer.Gid, iv timedim.Interval) (n int, err error) {
	qc, ctx, done := e.begin(ctx, "count_passing_through_geometries", table)
	defer done(&err)
	e.countQuery(7)
	qc.noteWindow(iv)
	l, ok := e.mctx.GIS().Layer(layerName)
	if !ok {
		return 0, fmt.Errorf("core: unknown layer %q", layerName)
	}
	pgs := make([]geom.Polygon, len(ids))
	for i, id := range ids {
		pg, ok := l.Polygon(id)
		if !ok {
			return 0, fmt.Errorf("core: layer %q has no polygon %d", layerName, id)
		}
		pgs[i] = pg
	}
	tc, err := e.table(ctx, qc, table)
	if err != nil {
		return 0, err
	}
	// Per-polygon interval maps (cached and prefiltered) replace the
	// object × polygon double loop: an object counts once if any
	// polygon's intervals touch the window.
	hit := make(map[moft.Oid]bool)
	for _, pg := range pgs {
		if err := qc.step(ctx); err != nil {
			return 0, err
		}
		ivmap, err := e.polygonIntervals(ctx, qc, tc, pg)
		if err != nil {
			return 0, err
		}
		for oid, ivs := range ivmap {
			if hit[oid] {
				continue
			}
			for _, ti := range ivs {
				if ti.Lo <= float64(iv.Hi) && float64(iv.Lo) <= ti.Hi {
					hit[oid] = true
					break
				}
			}
		}
	}
	return len(hit), nil
}

// --- Type 8: aggregation over one trajectory -------------------------

// TrajectoryStats summarizes one object's interpolated trajectory.
type TrajectoryStats struct {
	Oid      moft.Oid
	Samples  int
	Length   float64 // image length
	Duration float64 // seconds from first to last sample
	AvgSpeed float64 // Length / Duration
	MaxSpeed float64 // maximum leg speed
	Closed   bool
}

// TrajectoryAggregate computes the Type-8 aggregation for one object.
func (e *Engine) TrajectoryAggregate(ctx context.Context, table string, oid moft.Oid) (st TrajectoryStats, err error) {
	qc, ctx, done := e.begin(ctx, "trajectory_aggregate", table)
	defer done(&err)
	e.countQuery(8)
	tc, err := e.table(ctx, qc, table)
	if err != nil {
		return TrajectoryStats{}, err
	}
	l, ok := tc.lits[oid]
	if !ok {
		return TrajectoryStats{}, fmt.Errorf("core: no trajectory for object O%d", oid)
	}
	s := l.Sample()
	st = TrajectoryStats{
		Oid:      oid,
		Samples:  len(s),
		Length:   s.Length(),
		Duration: float64(s.TimeDomain().Duration()),
		MaxSpeed: l.MaxSpeed(),
		Closed:   s.IsClosed(),
	}
	if st.Duration > 0 {
		st.AvgSpeed = st.Length / st.Duration
	}
	return st, nil
}
