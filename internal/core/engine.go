// Package core is the paper's primary contribution in executable
// form: a spatio-temporal aggregation engine that integrates GIS
// dimensions, OLAP dimensions (including Time) and moving-object fact
// tables, and evaluates the eight query classes of Section 3.1:
//
//  1. spatial aggregation (geometric integration, Definition 4),
//  2. spatial aggregation with numeric information in the region
//     condition (summable rewriting),
//  3. pure trajectory-sample aggregation over FM and Time,
//  4. trajectory samples under geometric conditions (region C as a
//     first-order formula evaluated to a finite (Oid, t, ...) set),
//  5. regions whose condition itself contains an aggregation
//     ("second-order" aggregation),
//  6. the trajectory as a static spatial object at an instant,
//  7. trajectory queries requiring linear interpolation, and
//  8. aggregation over a single object's trajectory.
package core

import (
	"fmt"
	"sort"

	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

// Engine evaluates spatio-temporal aggregate queries against a model
// context.
type Engine struct {
	ctx *fo.Context
	// litCache memoizes per-object interpolated trajectories per
	// table.
	litCache map[string]map[moft.Oid]*traj.LIT
	// met receives engine metrics (cache hits, query-type counts).
	met *obs.Metrics
}

// New creates an engine over the model context.
func New(ctx *fo.Context) *Engine {
	return &Engine{
		ctx:      ctx,
		litCache: make(map[string]map[moft.Oid]*traj.LIT),
		met:      obs.Std,
	}
}

// Context returns the underlying model context.
func (e *Engine) Context() *fo.Context { return e.ctx }

// SetMetrics redirects the engine's metrics to m (nil restores the
// process-wide obs.Std bundle). Useful for isolating counts in tests.
func (e *Engine) SetMetrics(m *obs.Metrics) {
	if m == nil {
		m = obs.Std
	}
	e.met = m
}

// --- Type 1: spatial aggregation ------------------------------------

// GeometricAggregate evaluates a Definition-4 geometric aggregation.
func (e *Engine) GeometricAggregate(a gis.Aggregation) (float64, error) {
	e.met.Query(1).Inc()
	return a.Evaluate()
}

// --- Type 2: spatial aggregation over numeric conditions ------------

// SummableOverIDs evaluates the summable rewriting Σ_{g∈ids} measure(g)
// against a GIS fact table.
func (e *Engine) SummableOverIDs(ids []layer.Gid, ft *gis.FactTable, measure string) (float64, error) {
	e.met.Query(2).Inc()
	return gis.SummableFromFact(ids, ft, measure).Evaluate()
}

// --- Types 3, 4: region C as a first-order formula -------------------

// RegionC evaluates the formula to the paper's spatio-temporal
// structure C: a finite relation over the named output variables,
// e.g. (Oid, t) pairs.
func (e *Engine) RegionC(f fo.Formula, out []fo.Var) (*fo.Relation, error) {
	e.met.Query(3).Inc()
	return e.regionC(f, out)
}

// regionC is RegionC without the Type-3 counter, for internal reuse by
// the Type-4 entry points.
func (e *Engine) regionC(f fo.Formula, out []fo.Var) (*fo.Relation, error) {
	return fo.Eval(e.ctx, f, out)
}

// AggregateRegion evaluates region C and applies the γ operator of
// Definition 7: Q = γ_{fn,measure,groupBy}(C).
func (e *Engine) AggregateRegion(f fo.Formula, out []fo.Var, fn olap.AggFunc, measure fo.Var, groupBy []fo.Var) (*olap.AggResult, error) {
	e.met.Query(4).Inc()
	rel, err := e.regionC(f, out)
	if err != nil {
		return nil, err
	}
	sp := e.ctx.Tracer().Start("aggregate")
	defer sp.End()
	res, err := rel.GroupAggregate(fn, measure, groupBy)
	if err == nil {
		sp.SetCount("groups", int64(len(res.Rows)))
	}
	return res, err
}

// CountRegion evaluates region C and returns its cardinality — the
// most common aggregation ("number of buses", "number of cars").
func (e *Engine) CountRegion(f fo.Formula, out []fo.Var) (int, error) {
	e.met.Query(4).Inc()
	rel, err := e.regionC(f, out)
	if err != nil {
		return 0, err
	}
	sp := e.ctx.Tracer().Start("aggregate")
	sp.SetCount("tuples", int64(rel.Len()))
	sp.End()
	return rel.Len(), nil
}

// RatePerHour divides a region-C cardinality by a time span in hours,
// the "per hour" normalization of the motivating query (Remark 1:
// 4 tuples over a 3-hour morning span give 4/3).
func RatePerHour(count int, hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	return float64(count) / hours
}

// --- Type 5: second-order regions ------------------------------------

// FilterGeometriesByAggregate returns the geometry ids of the given
// kind in the given layer for which the inner aggregate satisfies op
// against threshold. This realizes regions such as "neighborhoods
// where the number of people with low income exceeds 50,000": the
// inner aggregation runs per geometry and gates its membership in C.
func (e *Engine) FilterGeometriesByAggregate(layerName string, kind layer.Kind,
	inner func(layer.Gid) (float64, error), op fo.CmpOp, threshold float64) ([]layer.Gid, error) {
	e.met.Query(5).Inc()
	l, ok := e.ctx.GIS().Layer(layerName)
	if !ok {
		return nil, fmt.Errorf("core: unknown layer %q", layerName)
	}
	var out []layer.Gid
	for _, id := range l.IDs(kind) {
		v, err := inner(id)
		if err != nil {
			return nil, fmt.Errorf("core: inner aggregate for %s %d: %w", kind, id, err)
		}
		keep := false
		switch op {
		case fo.LT:
			keep = v < threshold
		case fo.LE:
			keep = v <= threshold
		case fo.EQ:
			keep = v == threshold
		case fo.NE:
			keep = v != threshold
		case fo.GE:
			keep = v >= threshold
		case fo.GT:
			keep = v > threshold
		}
		if keep {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// --- Type 6: the trajectory as a static object at an instant ---------

// ObjectsSampledAt returns the objects with a sample exactly at
// instant t whose position lies in pg (the sample-level semantics of
// query Q4).
func (e *Engine) ObjectsSampledAt(table string, t timedim.Instant, pg geom.Polygon) ([]moft.Oid, error) {
	e.met.Query(6).Inc()
	tbl, err := e.ctx.Table(table)
	if err != nil {
		return nil, err
	}
	var out []moft.Oid
	tbl.ScanInterval(timedim.Interval{Lo: t, Hi: t}, func(tp moft.Tuple) bool {
		if pg.ContainsPoint(tp.Point()) {
			out = append(out, tp.Oid)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ObjectsInterpolatedAt returns the objects whose interpolated
// position at instant t lies in pg, even between samples.
func (e *Engine) ObjectsInterpolatedAt(table string, t timedim.Instant, pg geom.Polygon) ([]moft.Oid, error) {
	e.met.Query(6).Inc()
	lits, err := e.Trajectories(table)
	if err != nil {
		return nil, err
	}
	var out []moft.Oid
	for oid, l := range lits {
		if p, ok := l.AtInstant(t); ok && pg.ContainsPoint(p) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// --- Type 7: trajectory queries (interpolation) ----------------------

// Trajectories returns (and caches) the linear-interpolation
// trajectory of every object in the table.
func (e *Engine) Trajectories(table string) (map[moft.Oid]*traj.LIT, error) {
	if cached, ok := e.litCache[table]; ok {
		e.met.LitCacheHits.Inc()
		return cached, nil
	}
	e.met.LitCacheMisses.Inc()
	tbl, err := e.ctx.Table(table)
	if err != nil {
		return nil, err
	}
	sp := e.ctx.Tracer().Start("interpolate")
	defer sp.End()
	samples := int64(0)
	out := make(map[moft.Oid]*traj.LIT)
	for _, oid := range tbl.Objects() {
		tps := tbl.ObjectTuples(oid)
		s := make(traj.Sample, len(tps))
		for i, tp := range tps {
			s[i] = traj.TimePoint{T: tp.T, P: tp.Point()}
		}
		l, err := traj.NewLIT(s)
		if err != nil {
			return nil, fmt.Errorf("core: object O%d: %w", oid, err)
		}
		out[oid] = l
		samples += int64(len(tps))
	}
	sp.SetCount("objects", int64(len(out)))
	sp.SetCount("samples", samples)
	e.litCache[table] = out
	e.met.LitCacheTables.Add(1)
	e.met.LitCacheObjects.Add(int64(len(out)))
	return out, nil
}

// InvalidateTrajectories drops the trajectory cache for a table (call
// after mutating the MOFT).
func (e *Engine) InvalidateTrajectories(table string) {
	if cached, ok := e.litCache[table]; ok {
		e.met.LitCacheTables.Add(-1)
		e.met.LitCacheObjects.Add(-int64(len(cached)))
		delete(e.litCache, table)
	}
}

// ResetCache drops every cached trajectory table. The litCache grows
// without bound as distinct (possibly derived) tables are queried;
// long-lived processes can call this to reclaim the memory.
func (e *Engine) ResetCache() {
	for table := range e.litCache {
		e.InvalidateTrajectories(table)
	}
}

// CacheStats reports the current litCache footprint: the number of
// cached tables and the total number of cached object trajectories.
func (e *Engine) CacheStats() (tables, objects int) {
	for _, m := range e.litCache {
		tables++
		objects += len(m)
	}
	return tables, objects
}

// ObjectsPassingThrough returns the objects whose interpolated
// trajectory intersects pg at some time in iv (interpolation-aware
// semantics; the paper's O6 counts here even though it was never
// sampled inside).
func (e *Engine) ObjectsPassingThrough(table string, pg geom.Polygon, iv timedim.Interval) ([]moft.Oid, error) {
	e.met.Query(7).Inc()
	lits, err := e.Trajectories(table)
	if err != nil {
		return nil, err
	}
	var out []moft.Oid
	for oid, l := range lits {
		for _, ti := range l.InsidePolygonIntervals(pg) {
			if ti.Lo <= float64(iv.Hi) && float64(iv.Lo) <= ti.Hi {
				out = append(out, oid)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ObjectsSampledInside returns the objects with at least one raw
// sample in pg during iv (the sample-only counterpart of
// ObjectsPassingThrough; the two differ exactly on objects like O6).
func (e *Engine) ObjectsSampledInside(table string, pg geom.Polygon, iv timedim.Interval) ([]moft.Oid, error) {
	e.met.Query(7).Inc()
	tbl, err := e.ctx.Table(table)
	if err != nil {
		return nil, err
	}
	seen := map[moft.Oid]bool{}
	tbl.ScanInterval(iv, func(tp moft.Tuple) bool {
		if !seen[tp.Oid] && pg.ContainsPoint(tp.Point()) {
			seen[tp.Oid] = true
		}
		return true
	})
	out := make([]moft.Oid, 0, len(seen))
	for oid := range seen {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TimeSpentInside returns, per object, the total interpolated time
// (seconds) spent inside pg within iv — the paper's Q5 ("total amount
// of time spent continuously by cars in Antwerp").
func (e *Engine) TimeSpentInside(table string, pg geom.Polygon, iv timedim.Interval) (map[moft.Oid]float64, error) {
	e.met.Query(7).Inc()
	lits, err := e.Trajectories(table)
	if err != nil {
		return nil, err
	}
	out := make(map[moft.Oid]float64)
	for oid, l := range lits {
		var sum float64
		for _, ti := range l.InsidePolygonIntervals(pg) {
			lo, hi := ti.Lo, ti.Hi
			if lo < float64(iv.Lo) {
				lo = float64(iv.Lo)
			}
			if hi > float64(iv.Hi) {
				hi = float64(iv.Hi)
			}
			if hi > lo {
				sum += hi - lo
			}
		}
		if sum > 0 {
			out[oid] = sum
		}
	}
	return out, nil
}

// ObjectsEverWithinRadius returns objects whose interpolated
// trajectory comes within distance r of center during iv, with the
// total time spent within (the paper's Q6, interpolated variant).
func (e *Engine) ObjectsEverWithinRadius(table string, center geom.Point, r float64, iv timedim.Interval) (map[moft.Oid]float64, error) {
	e.met.Query(7).Inc()
	lits, err := e.Trajectories(table)
	if err != nil {
		return nil, err
	}
	out := make(map[moft.Oid]float64)
	for oid, l := range lits {
		var sum float64
		for _, ti := range l.WithinRadiusIntervals(center, r) {
			lo, hi := ti.Lo, ti.Hi
			if lo < float64(iv.Lo) {
				lo = float64(iv.Lo)
			}
			if hi > float64(iv.Hi) {
				hi = float64(iv.Hi)
			}
			if hi >= lo {
				sum += hi - lo
				if _, seen := out[oid]; !seen {
					out[oid] = 0
				}
			}
		}
		if sum > 0 {
			out[oid] = sum
		}
	}
	return out, nil
}

// CountPassingThroughGeometries counts the objects whose interpolated
// trajectory intersects at least one of the given polygons of a layer
// during iv. This is the Piet-QL moving-objects part of Section 5:
// the ids come from the geometric sub-query ("cities crossed by a
// river containing at least one store"), and each object's
// consecutive sample segments are intersected with those cities.
func (e *Engine) CountPassingThroughGeometries(table, layerName string, ids []layer.Gid, iv timedim.Interval) (int, error) {
	e.met.Query(7).Inc()
	l, ok := e.ctx.GIS().Layer(layerName)
	if !ok {
		return 0, fmt.Errorf("core: unknown layer %q", layerName)
	}
	lits, err := e.Trajectories(table)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, lit := range lits {
		hit := false
		for _, id := range ids {
			pg, ok := l.Polygon(id)
			if !ok {
				return 0, fmt.Errorf("core: layer %q has no polygon %d", layerName, id)
			}
			for _, ti := range lit.InsidePolygonIntervals(pg) {
				if ti.Lo <= float64(iv.Hi) && float64(iv.Lo) <= ti.Hi {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
		if hit {
			count++
		}
	}
	return count, nil
}

// --- Type 8: aggregation over one trajectory -------------------------

// TrajectoryStats summarizes one object's interpolated trajectory.
type TrajectoryStats struct {
	Oid      moft.Oid
	Samples  int
	Length   float64 // image length
	Duration float64 // seconds from first to last sample
	AvgSpeed float64 // Length / Duration
	MaxSpeed float64 // maximum leg speed
	Closed   bool
}

// TrajectoryAggregate computes the Type-8 aggregation for one object.
func (e *Engine) TrajectoryAggregate(table string, oid moft.Oid) (TrajectoryStats, error) {
	e.met.Query(8).Inc()
	lits, err := e.Trajectories(table)
	if err != nil {
		return TrajectoryStats{}, err
	}
	l, ok := lits[oid]
	if !ok {
		return TrajectoryStats{}, fmt.Errorf("core: no trajectory for object O%d", oid)
	}
	s := l.Sample()
	st := TrajectoryStats{
		Oid:      oid,
		Samples:  len(s),
		Length:   s.Length(),
		Duration: float64(s.TimeDomain().Duration()),
		MaxSpeed: l.MaxSpeed(),
		Closed:   s.IsClosed(),
	}
	if st.Duration > 0 {
		st.AvgSpeed = st.Length / st.Duration
	}
	return st, nil
}
