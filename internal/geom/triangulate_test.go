package geom

import (
	"math"
	"math/rand"
	"testing"
)

func triArea(tris []Triangle) float64 {
	var sum float64
	for _, t := range tris {
		sum += t.Area()
	}
	return sum
}

func TestTriangulateSquare(t *testing.T) {
	tris, err := TriangulateRing(unitSquare())
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 2 {
		t.Errorf("triangle count = %d", len(tris))
	}
	if math.Abs(triArea(tris)-1) > 1e-12 {
		t.Errorf("area = %v", triArea(tris))
	}
}

func TestTriangulateClockwiseInput(t *testing.T) {
	tris, err := TriangulateRing(unitSquare().Reverse())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(triArea(tris)-1) > 1e-12 {
		t.Errorf("area = %v", triArea(tris))
	}
}

func TestTriangulateConcave(t *testing.T) {
	u := Ring{Pt(0, 0), Pt(6, 0), Pt(6, 6), Pt(4, 6), Pt(4, 2), Pt(2, 2), Pt(2, 6), Pt(0, 6)}
	tris, err := TriangulateRing(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(triArea(tris)-u.Area()) > 1e-9 {
		t.Errorf("area = %v, want %v", triArea(tris), u.Area())
	}
	if len(tris) != len(u)-2 {
		t.Errorf("triangle count = %d, want %d", len(tris), len(u)-2)
	}
	// No triangle centroid may fall outside the ring.
	for _, tr := range tris {
		if tr.Area() > 1e-12 && u.Locate(tr.Centroid()) == Outside {
			t.Errorf("triangle centroid %v outside ring", tr.Centroid())
		}
	}
}

func TestTriangulateCollinearVertices(t *testing.T) {
	// Square with redundant midpoints on each edge.
	r := Ring{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(2, 1), Pt(2, 2), Pt(1, 2), Pt(0, 2), Pt(0, 1)}
	tris, err := TriangulateRing(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(triArea(tris)-4) > 1e-9 {
		t.Errorf("area = %v, want 4", triArea(tris))
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := TriangulateRing(Ring{Pt(0, 0), Pt(1, 1)}); err == nil {
		t.Error("want error for 2 points")
	}
	bow := Ring{Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)}
	if _, err := TriangulateRing(bow); err == nil {
		t.Error("want error for bowtie")
	}
}

func TestTriangulatePolygonWithHole(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(4, 4, 2)}}
	tris, err := Triangulate(pg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(triArea(tris)-96) > 1e-9 {
		t.Errorf("area = %v, want 96", triArea(tris))
	}
	for _, tr := range tris {
		if tr.Area() < 1e-12 {
			continue
		}
		c := tr.Centroid()
		if pg.Locate(c) == Outside {
			t.Errorf("triangle centroid %v outside polygon", c)
		}
	}
}

func TestTriangulatePolygonTwoHoles(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 20), Holes: []Ring{square(2, 2, 3), square(10, 10, 4)}}
	tris, err := Triangulate(pg)
	if err != nil {
		t.Fatal(err)
	}
	want := 400.0 - 9 - 16
	if math.Abs(triArea(tris)-want) > 1e-9 {
		t.Errorf("area = %v, want %v", triArea(tris), want)
	}
}

// TestTriangulateRandomConvex checks area preservation on random
// convex polygons built from convex hulls.
func TestTriangulateRandomConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		pts := make([]Point, 20)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		tris, err := TriangulateRing(hull)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if math.Abs(triArea(tris)-hull.Area()) > 1e-6 {
			t.Fatalf("iter %d: area %v want %v", iter, triArea(tris), hull.Area())
		}
	}
}

func TestTriangleHelpers(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(4, 0), Pt(0, 4)}
	if tr.Area() != 8 {
		t.Errorf("Area = %v", tr.Area())
	}
	if !tr.ContainsPoint(Pt(1, 1)) {
		t.Error("ContainsPoint interior")
	}
	if !tr.ContainsPoint(Pt(2, 0)) {
		t.Error("ContainsPoint boundary")
	}
	if tr.ContainsPoint(Pt(3, 3)) {
		t.Error("ContainsPoint outside")
	}
	if !tr.Centroid().NearEq(Pt(4.0/3, 4.0/3), 1e-12) {
		t.Errorf("Centroid = %v", tr.Centroid())
	}
}
