package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
}

func TestPointDistance(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(0, 0).Dist2(Pt(3, 4)); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if n := Pt(-3, 4).Norm(); n != 5 {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestPointLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestPointNearEq(t *testing.T) {
	if !Pt(1, 1).NearEq(Pt(1+1e-10, 1-1e-10), 1e-9) {
		t.Error("NearEq should accept within tolerance")
	}
	if Pt(1, 1).NearEq(Pt(1.1, 1), 1e-9) {
		t.Error("NearEq should reject beyond tolerance")
	}
}

func TestMidPoint(t *testing.T) {
	if got := MidPoint(Pt(0, 0), Pt(2, 4)); !got.Eq(Pt(1, 2)) {
		t.Errorf("MidPoint = %v", got)
	}
}

func TestPointString(t *testing.T) {
	if s := Pt(1.5, -2).String(); s != "(1.5, -2)" {
		t.Errorf("String = %q", s)
	}
}

// Property: Lerp midpoint equals MidPoint; Dist is symmetric and obeys
// the triangle inequality on finite samples.
func TestPointProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by float64) bool {
		a, b := sanePt(ax, ay), sanePt(bx, by)
		return math.Abs(a.Dist(b)-b.Dist(a)) < 1e-12
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := sanePt(ax, ay), sanePt(bx, by), sanePt(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
	addSubRoundtrip := func(ax, ay, bx, by float64) bool {
		a, b := sanePt(ax, ay), sanePt(bx, by)
		return a.Add(b).Sub(b).NearEq(a, 1e-6*(1+a.Norm()+b.Norm()))
	}
	if err := quick.Check(addSubRoundtrip, nil); err != nil {
		t.Error(err)
	}
}

// sanePt maps arbitrary quick-generated floats into a bounded,
// NaN-free coordinate range.
func sanePt(x, y float64) Point {
	return Point{saneF(x), saneF(y)}
}

func saneF(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}
