package geom

import (
	"math/rand"
	"testing"
)

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10),
		Pt(5, 5), Pt(2, 3), Pt(7, 8), // interior
		Pt(5, 0), Pt(10, 5), // on edges
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", len(hull), hull)
	}
	if !hull.IsCCW() {
		t.Error("hull should be counterclockwise")
	}
	if hull.Area() != 100 {
		t.Errorf("hull area = %v", hull.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Errorf("empty = %v", h)
	}
	if h := ConvexHull([]Point{Pt(1, 1)}); len(h) != 1 {
		t.Errorf("single = %v", h)
	}
	if h := ConvexHull([]Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}); len(h) != 1 {
		t.Errorf("duplicates = %v", h)
	}
	h := ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)})
	if len(h) != 2 {
		t.Errorf("collinear = %v", h)
	}
}

func TestConvexHullRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		pts := make([]Point, 100)
		for i := range pts {
			pts[i] = Pt(rng.NormFloat64()*50, rng.NormFloat64()*50)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			t.Fatalf("iter %d: degenerate hull from random points", iter)
		}
		// Convexity: every corner is a strict left turn.
		n := len(hull)
		for i := 0; i < n; i++ {
			if Orient(hull[i], hull[(i+1)%n], hull[(i+2)%n]) != CounterClockwise {
				t.Fatalf("iter %d: hull not strictly convex at %d", iter, i)
			}
		}
		// Containment: every input point inside or on the hull.
		for _, p := range pts {
			if hull.Locate(p) == Outside {
				t.Fatalf("iter %d: point %v outside hull", iter, p)
			}
		}
	}
}
