package geom_test

import (
	"math"
	"testing"

	"mogis/internal/agggrid"
	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/timedim"
)

// FuzzPointInPolygon cross-checks Polygon.ContainsPoint against the
// pre-aggregated grid's sample count — the same identity the engine's
// grid-verify mode asserts at query time. A fuzzed triangle and a
// handful of fuzzed samples go through both paths: a brute-force
// ContainsPoint scan and agggrid's interior/boundary cell
// classification with exact refinement. Any divergence is a
// soundness bug in one of the two.
func FuzzPointInPolygon(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 0.0, 5.0, 8.0, 2.0, 2.0, 9.0, 9.0)
	f.Add(-3.0, -3.0, 3.0, -3.0, 0.0, 4.0, 0.0, 0.0, 0.0, 4.0)
	f.Add(1.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.5, 1.2, 1.0, 1.5)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, p1x, p1y, p2x, p2y float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, p1x, p1y, p2x, p2y} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip("non-finite or out-of-range input")
			}
		}
		pg := geom.Polygon{Shell: geom.Ring{
			geom.Pt(ax, ay), geom.Pt(bx, by), geom.Pt(cx, cy),
		}}
		if pg.Validate() != nil {
			t.Skip("degenerate polygon")
		}

		tb := moft.New("fuzz")
		samples := []geom.Point{
			geom.Pt(p1x, p1y), geom.Pt(p2x, p2y),
			geom.Pt(ax, ay),               // a shell vertex: boundary semantics
			geom.Pt((ax+bx)/2, (ay+by)/2), // an edge midpoint
		}
		for i, p := range samples {
			tb.Add(moft.Oid(i+1), timedim.Instant(i), p.X, p.Y)
		}
		cols := tb.Columns()

		want := 0
		for _, p := range samples {
			if pg.ContainsPoint(p) {
				want++
			}
		}
		for _, cfg := range []agggrid.Config{{}, {NX: 2, NY: 2}, {NX: 16, NY: 16}} {
			g := agggrid.Build(cols, cfg)
			if got := g.CountSamples(pg, math.MinInt64, math.MaxInt64, nil); got != want {
				t.Fatalf("grid %v: CountSamples = %d, ContainsPoint scan = %d (polygon %v, samples %v)",
					cfg, got, want, pg.Shell, samples)
			}
		}
	})
}
