package geom

import (
	"fmt"
	"math"
)

// BBox is an axis-aligned bounding rectangle, closed on all sides.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyBBox returns the identity element for Union: a box that
// contains nothing and leaves any box unchanged when united with it.
func EmptyBBox() BBox {
	return BBox{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// NewBBox returns the bounding box of the given points.
func NewBBox(pts ...Point) BBox {
	b := EmptyBBox()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Width returns the horizontal extent (0 for an empty box).
func (b BBox) Width() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the vertical extent (0 for an empty box).
func (b BBox) Height() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area returns the area of the box (0 for an empty box).
func (b BBox) Area() float64 { return b.Width() * b.Height() }

// Perimeter returns half the perimeter (the usual R-tree margin metric
// uses this; full perimeter is 2*Perimeter).
func (b BBox) Perimeter() float64 { return b.Width() + b.Height() }

// Center returns the box center. It is undefined for empty boxes.
func (b BBox) Center() Point { return Point{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2} }

// ContainsPoint reports whether p lies inside or on the boundary of b.
func (b BBox) ContainsPoint(p Point) bool {
	return b.MinX <= p.X && p.X <= b.MaxX && b.MinY <= p.Y && p.Y <= b.MaxY
}

// Contains reports whether b fully contains o.
func (b BBox) Contains(o BBox) bool {
	if o.IsEmpty() {
		return true
	}
	return b.MinX <= o.MinX && o.MaxX <= b.MaxX && b.MinY <= o.MinY && o.MaxY <= b.MaxY
}

// Intersects reports whether b and o share at least one point.
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX && b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// Intersection returns the common region of b and o (possibly empty).
func (b BBox) Intersection(o BBox) BBox {
	r := BBox{
		MinX: maxf(b.MinX, o.MinX), MinY: maxf(b.MinY, o.MinY),
		MaxX: minf(b.MaxX, o.MaxX), MaxY: minf(b.MaxY, o.MaxY),
	}
	if r.IsEmpty() {
		return EmptyBBox()
	}
	return r
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		MinX: minf(b.MinX, o.MinX), MinY: minf(b.MinY, o.MinY),
		MaxX: maxf(b.MaxX, o.MaxX), MaxY: maxf(b.MaxY, o.MaxY),
	}
}

// ExtendPoint returns b grown to include p.
func (b BBox) ExtendPoint(p Point) BBox {
	return b.Union(BBox{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Expand returns b grown by margin d on every side.
func (b BBox) Expand(d float64) BBox {
	if b.IsEmpty() {
		return b
	}
	return BBox{MinX: b.MinX - d, MinY: b.MinY - d, MaxX: b.MaxX + d, MaxY: b.MaxY + d}
}

// Corners returns the four corners in counterclockwise order starting
// at (MinX, MinY).
func (b BBox) Corners() [4]Point {
	return [4]Point{
		{b.MinX, b.MinY}, {b.MaxX, b.MinY}, {b.MaxX, b.MaxY}, {b.MinX, b.MaxY},
	}
}

// AsPolygon returns the box as a counterclockwise rectangle polygon.
func (b BBox) AsPolygon() Polygon {
	c := b.Corners()
	return Polygon{Shell: Ring{c[0], c[1], c[2], c[3]}}
}

// String formats the box as "[minx,miny..maxx,maxy]".
func (b BBox) String() string {
	return fmt.Sprintf("[%g,%g..%g,%g]", b.MinX, b.MinY, b.MaxX, b.MaxY)
}
