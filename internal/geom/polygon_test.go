package geom

import (
	"math"
	"testing"
	"testing/quick"
)

// unitSquare returns the CCW unit square [0,1]².
func unitSquare() Ring {
	return Ring{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
}

// square returns a CCW axis-aligned square with corner (x,y) and side s.
func square(x, y, s float64) Ring {
	return Ring{Pt(x, y), Pt(x+s, y), Pt(x+s, y+s), Pt(x, y+s)}
}

func TestRingArea(t *testing.T) {
	sq := unitSquare()
	if a := sq.SignedArea(); a != 1 {
		t.Errorf("SignedArea = %v", a)
	}
	if a := sq.Reverse().SignedArea(); a != -1 {
		t.Errorf("reversed SignedArea = %v", a)
	}
	if !sq.IsCCW() || sq.Reverse().IsCCW() {
		t.Error("IsCCW mismatch")
	}
	tri := Ring{Pt(0, 0), Pt(4, 0), Pt(0, 3)}
	if a := tri.Area(); a != 6 {
		t.Errorf("triangle Area = %v", a)
	}
}

func TestRingCentroid(t *testing.T) {
	if c := unitSquare().Centroid(); !c.NearEq(Pt(0.5, 0.5), 1e-12) {
		t.Errorf("Centroid = %v", c)
	}
	tri := Ring{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	if c := tri.Centroid(); !c.NearEq(Pt(1, 1), 1e-12) {
		t.Errorf("triangle Centroid = %v", c)
	}
	// Degenerate ring falls back to the vertex mean.
	deg := Ring{Pt(0, 0), Pt(2, 0), Pt(4, 0)}
	if c := deg.Centroid(); !c.NearEq(Pt(2, 0), 1e-12) {
		t.Errorf("degenerate Centroid = %v", c)
	}
}

func TestRingPerimeter(t *testing.T) {
	if p := unitSquare().Perimeter(); p != 4 {
		t.Errorf("Perimeter = %v", p)
	}
}

func TestRingLocate(t *testing.T) {
	sq := unitSquare()
	tests := []struct {
		p    Point
		want PointLocation
	}{
		{Pt(0.5, 0.5), Inside},
		{Pt(0, 0), OnBoundary},
		{Pt(0.5, 0), OnBoundary},
		{Pt(1, 1), OnBoundary},
		{Pt(1.0001, 0.5), Outside},
		{Pt(-0.1, 0.5), Outside},
		{Pt(0.5, 2), Outside},
	}
	for _, tt := range tests {
		if got := sq.Locate(tt.p); got != tt.want {
			t.Errorf("Locate(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRingLocateConcave(t *testing.T) {
	// A "U" shape: the notch interior is outside.
	u := Ring{Pt(0, 0), Pt(6, 0), Pt(6, 6), Pt(4, 6), Pt(4, 2), Pt(2, 2), Pt(2, 6), Pt(0, 6)}
	if got := u.Locate(Pt(3, 4)); got != Outside {
		t.Errorf("notch point = %v, want outside", got)
	}
	if got := u.Locate(Pt(1, 4)); got != Inside {
		t.Errorf("left arm point = %v, want inside", got)
	}
	if got := u.Locate(Pt(3, 1)); got != Inside {
		t.Errorf("base point = %v, want inside", got)
	}
	if got := u.Locate(Pt(3, 2)); got != OnBoundary {
		t.Errorf("notch floor point = %v, want boundary", got)
	}
}

// TestRingLocateRayThroughVertex guards the classic ray-casting bug
// when the test point is horizontally aligned with vertices.
func TestRingLocateRayThroughVertex(t *testing.T) {
	diamond := Ring{Pt(0, -2), Pt(2, 0), Pt(0, 2), Pt(-2, 0)}
	if got := diamond.Locate(Pt(0, 0)); got != Inside {
		t.Errorf("center = %v", got)
	}
	if got := diamond.Locate(Pt(-3, 0)); got != Outside {
		t.Errorf("left of diamond aligned with vertices = %v", got)
	}
	if got := diamond.Locate(Pt(3, 0)); got != Outside {
		t.Errorf("right of diamond aligned with vertices = %v", got)
	}
	if got := diamond.Locate(Pt(2, 0)); got != OnBoundary {
		t.Errorf("vertex = %v", got)
	}
}

func TestRingIsSimple(t *testing.T) {
	if !unitSquare().IsSimple() {
		t.Error("square should be simple")
	}
	bow := Ring{Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)}
	if bow.IsSimple() {
		t.Error("bowtie should not be simple")
	}
	if (Ring{Pt(0, 0), Pt(1, 1)}).IsSimple() {
		t.Error("two-point ring is not simple")
	}
}

func TestPolygonValidate(t *testing.T) {
	ok := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(2, 2, 2)}}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
	bad := Polygon{Shell: Ring{Pt(0, 0), Pt(1, 1)}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for 2-vertex shell")
	}
	holeOut := Polygon{Shell: square(0, 0, 1), Holes: []Ring{square(5, 5, 1)}}
	if err := holeOut.Validate(); err == nil {
		t.Error("expected error for hole outside shell")
	}
	bowtie := Polygon{Shell: Ring{Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)}}
	if err := bowtie.Validate(); err == nil {
		t.Error("expected error for self-intersecting shell")
	}
}

func TestPolygonAreaWithHoles(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(1, 1, 2), square(5, 5, 3)}}
	want := 100.0 - 4 - 9
	if a := pg.Area(); a != want {
		t.Errorf("Area = %v, want %v", a, want)
	}
	if p := pg.Perimeter(); p != 40+8+12 {
		t.Errorf("Perimeter = %v", p)
	}
}

func TestPolygonLocateWithHole(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(4, 4, 2)}}
	tests := []struct {
		p    Point
		want PointLocation
	}{
		{Pt(1, 1), Inside},
		{Pt(5, 5), Outside},    // inside the hole
		{Pt(4, 5), OnBoundary}, // on the hole boundary
		{Pt(0, 5), OnBoundary},
		{Pt(-1, 5), Outside},
	}
	for _, tt := range tests {
		if got := pg.Locate(tt.p); got != tt.want {
			t.Errorf("Locate(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !pg.ContainsPoint(Pt(0, 5)) {
		t.Error("boundary should count as contained (closed semantics)")
	}
	if pg.ContainsPointStrict(Pt(0, 5)) {
		t.Error("boundary is not strictly inside")
	}
}

func TestPolygonNormalize(t *testing.T) {
	pg := Polygon{
		Shell: square(0, 0, 10).Reverse(), // clockwise shell
		Holes: []Ring{square(2, 2, 2)},    // counterclockwise hole
	}
	n := pg.Normalize()
	if !n.Shell.IsCCW() {
		t.Error("shell should be CCW after Normalize")
	}
	if n.Holes[0].IsCCW() {
		t.Error("hole should be CW after Normalize")
	}
	if n.Area() != pg.Area() {
		t.Error("Normalize must preserve area")
	}
}

func TestPolygonCentroidWithHole(t *testing.T) {
	// Symmetric hole keeps the centroid at the center.
	pg := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(4, 4, 2)}}
	if c := pg.Centroid(); !c.NearEq(Pt(5, 5), 1e-9) {
		t.Errorf("Centroid = %v", c)
	}
	// Asymmetric hole shifts it away from the hole.
	pg2 := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(6, 6, 3)}}
	c := pg2.Centroid()
	if !(c.X < 5 && c.Y < 5) {
		t.Errorf("Centroid should shift away from hole, got %v", c)
	}
}

func TestPolygonIntersectsSegment(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10)}
	tests := []struct {
		s    Segment
		want bool
	}{
		{Seg(Pt(2, 2), Pt(3, 3)), true},   // fully inside
		{Seg(Pt(-5, 5), Pt(15, 5)), true}, // crosses
		{Seg(Pt(-5, -5), Pt(-1, -1)), false},
		{Seg(Pt(-5, 0), Pt(15, 0)), true}, // along the edge
		{Seg(Pt(-1, 11), Pt(11, 11)), false},
	}
	for _, tt := range tests {
		if got := pg.IntersectsSegment(tt.s); got != tt.want {
			t.Errorf("IntersectsSegment(%v) = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestPolygonIntersectsPolyline(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10)}
	crossing := Polyline{Pt(-5, -5), Pt(5, 5), Pt(20, 5)}
	if !pg.IntersectsPolyline(crossing) {
		t.Error("crossing polyline should intersect")
	}
	outside := Polyline{Pt(-5, -5), Pt(-5, 20), Pt(-2, 20)}
	if pg.IntersectsPolyline(outside) {
		t.Error("outside polyline should not intersect")
	}
	// Both endpoints outside but passing through the polygon.
	through := Polyline{Pt(-5, 5), Pt(15, 5)}
	if !pg.IntersectsPolyline(through) {
		t.Error("pass-through polyline should intersect")
	}
}

func TestPolygonIntersectsPolygon(t *testing.T) {
	a := Polygon{Shell: square(0, 0, 10)}
	tests := []struct {
		name string
		b    Polygon
		want bool
	}{
		{"overlap", Polygon{Shell: square(5, 5, 10)}, true},
		{"contained", Polygon{Shell: square(2, 2, 2)}, true},
		{"containing", Polygon{Shell: square(-5, -5, 30)}, true},
		{"disjoint", Polygon{Shell: square(20, 20, 3)}, false},
		{"edge touch", Polygon{Shell: square(10, 0, 5)}, true},
		{"corner touch", Polygon{Shell: square(10, 10, 5)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.IntersectsPolygon(tt.b); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
			if got := tt.b.IntersectsPolygon(a); got != tt.want {
				t.Errorf("symmetric: got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPolygonContainsPolygon(t *testing.T) {
	outer := Polygon{Shell: square(0, 0, 10)}
	if !outer.ContainsPolygon(Polygon{Shell: square(2, 2, 3)}) {
		t.Error("inner square should be contained")
	}
	if outer.ContainsPolygon(Polygon{Shell: square(8, 8, 5)}) {
		t.Error("overlapping square is not contained")
	}
	if outer.ContainsPolygon(Polygon{Shell: square(20, 20, 2)}) {
		t.Error("disjoint square is not contained")
	}
	// Contained in shell but inside a hole → not contained.
	holed := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(3, 3, 4)}}
	if holed.ContainsPolygon(Polygon{Shell: square(4, 4, 1)}) {
		t.Error("square inside hole is not contained")
	}
}

func TestSegmentInsideIntervals(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10)}
	// Fully inside.
	ivs := pg.SegmentInsideIntervals(Seg(Pt(2, 5), Pt(8, 5)))
	if len(ivs) != 1 || ivs[0].Lo != 0 || ivs[0].Hi != 1 {
		t.Errorf("inside: %+v", ivs)
	}
	// Crossing: inside fraction should be 1/2 (from x=-5 to 15, inside 0..10).
	ivs = pg.SegmentInsideIntervals(Seg(Pt(-5, 5), Pt(15, 5)))
	if len(ivs) != 1 {
		t.Fatalf("crossing: %+v", ivs)
	}
	if math.Abs(ivs[0].Lo-0.25) > 1e-9 || math.Abs(ivs[0].Hi-0.75) > 1e-9 {
		t.Errorf("crossing interval = %+v", ivs[0])
	}
	// Fully outside.
	if ivs = pg.SegmentInsideIntervals(Seg(Pt(-5, -5), Pt(-1, -5))); len(ivs) != 0 {
		t.Errorf("outside: %+v", ivs)
	}
	// Degenerate segment.
	if ivs = pg.SegmentInsideIntervals(Seg(Pt(5, 5), Pt(5, 5))); len(ivs) != 1 {
		t.Errorf("degenerate inside: %+v", ivs)
	}
	if ivs = pg.SegmentInsideIntervals(Seg(Pt(50, 5), Pt(50, 5))); len(ivs) != 0 {
		t.Errorf("degenerate outside: %+v", ivs)
	}
}

func TestSegmentInsideIntervalsWithHole(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(4, 4, 2)}}
	// Horizontal line through the hole: inside pieces are [0,4] and [6,10].
	ivs := pg.SegmentInsideIntervals(Seg(Pt(0, 5), Pt(10, 5)))
	if len(ivs) != 2 {
		t.Fatalf("want 2 intervals, got %+v", ivs)
	}
	var total float64
	for _, iv := range ivs {
		total += iv.Hi - iv.Lo
	}
	if math.Abs(total-0.8) > 1e-9 {
		t.Errorf("inside fraction = %v, want 0.8", total)
	}
}

func TestLengthInside(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10)}
	pl := Polyline{Pt(-5, 5), Pt(5, 5), Pt(5, 15)}
	// Inside pieces: x from 0..5 (len 5) and y from 5..10 (len 5).
	if got := pl.LengthInside(pg); math.Abs(got-10) > 1e-9 {
		t.Errorf("LengthInside = %v, want 10", got)
	}
}

// Property: polygon containment of a point is invariant under ring
// rotation (starting vertex choice).
func TestLocateRotationInvariance(t *testing.T) {
	ring := Ring{Pt(0, 0), Pt(8, 1), Pt(10, 6), Pt(5, 9), Pt(1, 6)}
	f := func(px, py float64, rot uint8) bool {
		p := Point{math.Mod(saneF(px), 12), math.Mod(saneF(py), 12)}
		k := int(rot) % len(ring)
		rotated := append(ring[k:].Clone(), ring[:k]...)
		return ring.Locate(p) == rotated.Locate(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPointLocationString(t *testing.T) {
	if Inside.String() != "inside" || Outside.String() != "outside" || OnBoundary.String() != "boundary" {
		t.Error("PointLocation.String mismatch")
	}
}
