package geom

import (
	"errors"
	"math"
	"sort"

	"mogis/internal/obs"
)

// Ring is a closed sequence of vertices. The closing edge from the
// last vertex back to the first is implicit; the first vertex is not
// repeated at the end.
type Ring []Point

// Polygon is a simple polygon with optional holes, the geometry the
// paper uses for neighborhoods and cities ("regions can have holes",
// Section 2).
type Polygon struct {
	Shell Ring
	Holes []Ring
}

// ErrNotSimple is returned when a ring self-intersects.
var ErrNotSimple = errors.New("geom: ring is not simple")

// NumVertices returns the number of ring vertices.
func (r Ring) NumVertices() int { return len(r) }

// Segment returns the i-th boundary segment (0-based, including the
// implicit closing segment).
func (r Ring) Segment(i int) Segment {
	return Segment{A: r[i], B: r[(i+1)%len(r)]}
}

// SignedArea returns the area with positive sign for counterclockwise
// rings (shoelace formula).
func (r Ring) SignedArea() float64 {
	var sum float64
	n := len(r)
	if n < 3 {
		return 0
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return sum / 2
}

// Area returns the absolute enclosed area.
func (r Ring) Area() float64 { return math.Abs(r.SignedArea()) }

// IsCCW reports whether the ring winds counterclockwise.
func (r Ring) IsCCW() bool { return r.SignedArea() > 0 }

// Reverse returns the ring with opposite winding.
func (r Ring) Reverse() Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[len(r)-1-i] = p
	}
	return out
}

// Clone returns a deep copy of the ring.
func (r Ring) Clone() Ring {
	out := make(Ring, len(r))
	copy(out, r)
	return out
}

// BBox returns the bounding box of the ring.
func (r Ring) BBox() BBox { return NewBBox(r...) }

// Centroid returns the area centroid of the ring.
func (r Ring) Centroid() Point {
	var cx, cy, a float64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cross := r[i].X*r[j].Y - r[j].X*r[i].Y
		cx += (r[i].X + r[j].X) * cross
		cy += (r[i].Y + r[j].Y) * cross
		a += cross
	}
	if a == 0 {
		// Degenerate ring: fall back to the vertex mean.
		var m Point
		for _, p := range r {
			m = m.Add(p)
		}
		return m.Scale(1 / float64(len(r)))
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// Perimeter returns the boundary length of the ring.
func (r Ring) Perimeter() float64 {
	var sum float64
	for i := range r {
		sum += r.Segment(i).Length()
	}
	return sum
}

// PointLocation classifies a point relative to a ring or polygon.
type PointLocation int

// Point-in-polygon classifications.
const (
	Outside PointLocation = iota
	OnBoundary
	Inside
)

func (l PointLocation) String() string {
	switch l {
	case Inside:
		return "inside"
	case OnBoundary:
		return "boundary"
	default:
		return "outside"
	}
}

// Locate classifies p against the ring using the winding/crossing
// method with the robust orientation predicate, so boundary cases are
// exact.
func (r Ring) Locate(p Point) PointLocation {
	n := len(r)
	if n == 0 {
		return Outside
	}
	if n == 1 {
		if r[0].Eq(p) {
			return OnBoundary
		}
		return Outside
	}
	inside := false
	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		if OnSegment(a, b, p) {
			return OnBoundary
		}
		// Crossing test on the upward/downward edge.
		if (a.Y > p.Y) != (b.Y > p.Y) {
			o := Orient(a, b, p)
			if b.Y > a.Y {
				if o == CounterClockwise {
					inside = !inside
				}
			} else {
				if o == Clockwise {
					inside = !inside
				}
			}
		}
	}
	if inside {
		return Inside
	}
	return Outside
}

// IsSimple reports whether the ring has no self-intersections other
// than shared vertices of consecutive edges.
func (r Ring) IsSimple() bool {
	n := len(r)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		si := r.Segment(i)
		for j := i + 1; j < n; j++ {
			// Skip adjacent edges (they share a vertex by construction).
			if j == i+1 || (i == 0 && j == n-1) {
				continue
			}
			if si.Intersects(r.Segment(j)) {
				return false
			}
		}
	}
	return true
}

// Validate checks vertex count, simplicity of the shell and holes,
// and that every hole lies inside the shell.
func (pg Polygon) Validate() error {
	if len(pg.Shell) < 3 {
		return ErrTooFewPoints
	}
	if !pg.Shell.IsSimple() {
		return ErrNotSimple
	}
	for _, h := range pg.Holes {
		if len(h) < 3 {
			return ErrTooFewPoints
		}
		if !h.IsSimple() {
			return ErrNotSimple
		}
		for _, p := range h {
			if pg.Shell.Locate(p) == Outside {
				return errors.New("geom: hole vertex outside shell")
			}
		}
	}
	return nil
}

// Normalize returns the polygon with the shell wound counterclockwise
// and holes clockwise, the orientation convention used throughout.
func (pg Polygon) Normalize() Polygon {
	out := Polygon{Shell: pg.Shell.Clone()}
	if !out.Shell.IsCCW() {
		out.Shell = out.Shell.Reverse()
	}
	for _, h := range pg.Holes {
		hh := h.Clone()
		if hh.IsCCW() {
			hh = hh.Reverse()
		}
		out.Holes = append(out.Holes, hh)
	}
	return out
}

// Area returns the enclosed area (shell minus holes).
func (pg Polygon) Area() float64 {
	a := pg.Shell.Area()
	for _, h := range pg.Holes {
		a -= h.Area()
	}
	return a
}

// Perimeter returns the total boundary length including holes.
func (pg Polygon) Perimeter() float64 {
	sum := pg.Shell.Perimeter()
	for _, h := range pg.Holes {
		sum += h.Perimeter()
	}
	return sum
}

// BBox returns the bounding box of the polygon.
func (pg Polygon) BBox() BBox { return pg.Shell.BBox() }

// Centroid returns the area centroid accounting for holes.
func (pg Polygon) Centroid() Point {
	if len(pg.Holes) == 0 {
		return pg.Shell.Centroid()
	}
	ca := pg.Shell.Centroid()
	aa := pg.Shell.Area()
	sx, sy, at := ca.X*aa, ca.Y*aa, aa
	for _, h := range pg.Holes {
		c := h.Centroid()
		a := h.Area()
		sx -= c.X * a
		sy -= c.Y * a
		at -= a
	}
	if at == 0 {
		return ca
	}
	return Point{sx / at, sy / at}
}

// Locate classifies p against the polygon: inside the shell and
// outside every hole is Inside; on any ring is OnBoundary.
func (pg Polygon) Locate(p Point) PointLocation {
	obs.Std.GeomPointInPolygon.Inc()
	loc := pg.Shell.Locate(p)
	if loc != Inside {
		return loc
	}
	for _, h := range pg.Holes {
		switch h.Locate(p) {
		case Inside:
			return Outside
		case OnBoundary:
			return OnBoundary
		}
	}
	return Inside
}

// ContainsPoint reports whether p lies inside or on the boundary,
// matching the paper's closed-region semantics for the rollup
// relation r^{Pt,Pg} (a point may belong to two adjacent polygons).
func (pg Polygon) ContainsPoint(p Point) bool { return pg.Locate(p) != Outside }

// ContainsPointStrict reports whether p lies strictly inside.
func (pg Polygon) ContainsPointStrict(p Point) bool { return pg.Locate(p) == Inside }

// Rings returns the shell followed by the holes.
func (pg Polygon) Rings() []Ring {
	out := make([]Ring, 0, 1+len(pg.Holes))
	out = append(out, pg.Shell)
	out = append(out, pg.Holes...)
	return out
}

// boundarySegments calls f for every boundary segment of the polygon.
func (pg Polygon) boundarySegments(f func(Segment) bool) {
	for _, r := range pg.Rings() {
		for i := range r {
			if !f(r.Segment(i)) {
				return
			}
		}
	}
}

// IntersectsSegment reports whether s shares any point with the closed
// polygon (its interior or boundary).
func (pg Polygon) IntersectsSegment(s Segment) bool {
	if pg.ContainsPoint(s.A) || pg.ContainsPoint(s.B) {
		return true
	}
	hit := false
	pg.boundarySegments(func(b Segment) bool {
		if b.Intersects(s) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// IntersectsPolyline reports whether the chain shares any point with
// the closed polygon. This is the predicate behind the paper's
// "cities crossed by a river" (Section 5).
func (pg Polygon) IntersectsPolyline(pl Polyline) bool {
	if !pg.BBox().Intersects(pl.BBox()) {
		return false
	}
	for i := 0; i < pl.NumSegments(); i++ {
		if pg.IntersectsSegment(pl.Segment(i)) {
			return true
		}
	}
	return len(pl) == 1 && pg.ContainsPoint(pl[0])
}

// IntersectsPolygon reports whether the two closed polygons share any
// point.
func (pg Polygon) IntersectsPolygon(o Polygon) bool {
	if !pg.BBox().Intersects(o.BBox()) {
		return false
	}
	if len(o.Shell) > 0 && pg.ContainsPoint(o.Shell[0]) {
		return true
	}
	if len(pg.Shell) > 0 && o.ContainsPoint(pg.Shell[0]) {
		return true
	}
	hit := false
	pg.boundarySegments(func(a Segment) bool {
		o.boundarySegments(func(b Segment) bool {
			if a.Intersects(b) {
				hit = true
				return false
			}
			return true
		})
		return !hit
	})
	return hit
}

// ContainsPolygon reports whether o lies entirely inside pg (boundary
// contact allowed). Used for CONTAINS in Piet-QL.
func (pg Polygon) ContainsPolygon(o Polygon) bool {
	for _, p := range o.Shell {
		if pg.Locate(p) == Outside {
			return false
		}
	}
	// Edges of o must not cross into a hole or outside: check that no
	// boundary segment of o properly crosses a boundary segment of pg,
	// and that hole interiors do not swallow o.
	crossed := false
	o.boundarySegments(func(s Segment) bool {
		mid := s.Midpoint()
		if pg.Locate(mid) == Outside {
			crossed = true
			return false
		}
		return true
	})
	return !crossed
}

// Interval is a closed sub-interval [Lo, Hi] of a segment's [0,1]
// parameter range.
type Interval struct {
	Lo, Hi float64
}

// SegmentInsideIntervals returns the parameter intervals of segment s
// (t ∈ [0,1]) that lie inside or on the boundary of the polygon,
// merged and sorted. It cuts s at every boundary crossing and
// classifies each piece by its midpoint. This powers the paper's
// trajectory queries (Q5: time spent inside a city; Q2: road length
// in a region).
func (pg Polygon) SegmentInsideIntervals(s Segment) []Interval {
	if s.IsDegenerate() {
		if pg.ContainsPoint(s.A) {
			return []Interval{{0, 1}}
		}
		return nil
	}
	cuts := []float64{0, 1}
	dir := s.B.Sub(s.A)
	l2 := dir.Norm2()
	pg.boundarySegments(func(b Segment) bool {
		iv := s.Intersect(b)
		switch iv.Kind {
		case PointIntersection:
			cuts = append(cuts, clamp01(iv.P.Sub(s.A).Dot(dir)/l2))
		case OverlapIntersection:
			cuts = append(cuts,
				clamp01(iv.Overlap.A.Sub(s.A).Dot(dir)/l2),
				clamp01(iv.Overlap.B.Sub(s.A).Dot(dir)/l2))
		}
		return true
	})
	sort.Float64s(cuts)
	var out []Interval
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi-lo < 1e-12 {
			continue
		}
		mid := s.At((lo + hi) / 2)
		if pg.ContainsPoint(mid) {
			if n := len(out); n > 0 && out[n-1].Hi >= lo-1e-12 {
				out[n-1].Hi = hi
			} else {
				out = append(out, Interval{lo, hi})
			}
		}
	}
	return out
}

func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}
