package geom

import "testing"

func TestWKT(t *testing.T) {
	tests := []struct {
		g    any
		want string
	}{
		{Pt(1, 2.5), "POINT (1 2.5)"},
		{Seg(Pt(0, 0), Pt(1, 1)), "LINESTRING (0 0, 1 1)"},
		{Polyline{Pt(0, 0), Pt(1, 0), Pt(1, 1)}, "LINESTRING (0 0, 1 0, 1 1)"},
		{Ring{Pt(0, 0), Pt(1, 0), Pt(1, 1)}, "POLYGON ((0 0, 1 0, 1 1, 0 0))"},
		{
			Polygon{Shell: Ring{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}, Holes: []Ring{{Pt(1, 1), Pt(2, 1), Pt(2, 2)}}},
			"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 1))",
		},
		{BBox{0, 0, 2, 3}, "POLYGON ((0 0, 2 0, 2 3, 0 3, 0 0))"},
		{42, "UNKNOWN (42)"},
	}
	for _, tt := range tests {
		if got := WKT(tt.g); got != tt.want {
			t.Errorf("WKT(%v) = %q, want %q", tt.g, got, tt.want)
		}
	}
}

func TestParseWKTPoint(t *testing.T) {
	p, err := ParseWKTPoint("POINT (3.5 -2)")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Eq(Pt(3.5, -2)) {
		t.Errorf("parsed %v", p)
	}
	if _, err := ParseWKTPoint("LINESTRING (0 0, 1 1)"); err == nil {
		t.Error("want error for non-point")
	}
	if _, err := ParseWKTPoint("POINT (1)"); err == nil {
		t.Error("want error for arity")
	}
	if _, err := ParseWKTPoint("POINT (a b)"); err == nil {
		t.Error("want error for non-numeric")
	}
}

func TestWKTRoundtripPoint(t *testing.T) {
	orig := Pt(12.25, -0.5)
	p, err := ParseWKTPoint(WKT(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Eq(orig) {
		t.Errorf("roundtrip %v -> %v", orig, p)
	}
}
