package geom

import (
	"math/rand"
	"testing"
)

// BenchmarkOrientFastPath measures the float filter on well-separated
// points (the common case: no exact fallback).
func BenchmarkOrientFastPath(b *testing.B) {
	a, c, d := Pt(0.1, 0.2), Pt(10.3, 7.9), Pt(3.7, 9.1)
	for i := 0; i < b.N; i++ {
		Orient(a, c, d)
	}
}

// BenchmarkOrientExactFallback measures degenerate inputs that force
// the big.Rat path (ablation for DESIGN.md decision 1).
func BenchmarkOrientExactFallback(b *testing.B) {
	a, c, d := Pt(1e16, 1e16), Pt(2e16, 2e16), Pt(3e16, 3e16)
	for i := 0; i < b.N; i++ {
		Orient(a, c, d)
	}
}

func benchRing(n int) Ring {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, n*3)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return ConvexHull(pts)
}

func BenchmarkPointInPolygon(b *testing.B) {
	r := benchRing(64)
	p := r.Centroid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Locate(p)
	}
}

func BenchmarkTriangulateRing64(b *testing.B) {
	r := benchRing(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TriangulateRing(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntersectionArea(b *testing.B) {
	p := Polygon{Shell: benchRing(32)}
	q := Polygon{Shell: benchRing(24)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectionArea(p, q)
	}
}

func BenchmarkSegmentInsideIntervals(b *testing.B) {
	pg := Polygon{Shell: benchRing(48)}
	s := Seg(Pt(-100, 500), Pt(1100, 480))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg.SegmentInsideIntervals(s)
	}
}

func BenchmarkSimplifyPolyline(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var pl Polyline
	p := Pt(0, 0)
	for i := 0; i < 1000; i++ {
		p = p.Add(Pt(rng.Float64()*3, rng.Float64()*2-1))
		pl = append(pl, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimplifyPolyline(pl, 2)
	}
}
