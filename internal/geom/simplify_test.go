package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplifyPolylineStraight(t *testing.T) {
	var pl Polyline
	for i := 0; i <= 50; i++ {
		pl = append(pl, Pt(float64(i), 0))
	}
	s := SimplifyPolyline(pl, 0.01)
	if len(s) != 2 {
		t.Errorf("straight line simplified to %d points", len(s))
	}
	if !s[0].Eq(pl[0]) || !s[1].Eq(pl[50]) {
		t.Error("endpoints not preserved")
	}
}

func TestSimplifyPolylineKeepsFeatures(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(5, 0), Pt(5, 5), Pt(10, 5)}
	s := SimplifyPolyline(pl, 0.5)
	if len(s) != 4 {
		t.Errorf("corners dropped: %d of 4", len(s))
	}
	// A huge epsilon collapses everything to endpoints.
	s = SimplifyPolyline(pl, 100)
	if len(s) != 2 {
		t.Errorf("collapse = %d points", len(s))
	}
	// Tiny inputs are returned as copies.
	if got := SimplifyPolyline(Polyline{Pt(0, 0), Pt(1, 1)}, 1); len(got) != 2 {
		t.Errorf("two points = %d", len(got))
	}
}

func TestSimplifyPolylineErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		var pl Polyline
		p := Pt(0, 0)
		for i := 0; i < 200; i++ {
			p = p.Add(Pt(rng.Float64()*3, rng.Float64()*2-1))
			pl = append(pl, p)
		}
		const eps = 2.0
		s := SimplifyPolyline(pl, eps)
		if len(s) >= len(pl) {
			t.Fatalf("trial %d: no simplification", trial)
		}
		// Every original vertex is within eps of the simplified chain.
		for _, v := range pl {
			if d := s.DistToPoint(v); d > eps+1e-9 {
				t.Fatalf("trial %d: vertex %v deviates %v > %v", trial, v, d, eps)
			}
		}
	}
}

func TestSimplifyRing(t *testing.T) {
	// A square with redundant edge midpoints simplifies back to 4
	// vertices.
	r := Ring{
		Pt(0, 0), Pt(5, 0), Pt(10, 0), Pt(10, 5), Pt(10, 10),
		Pt(5, 10), Pt(0, 10), Pt(0, 5),
	}
	s := SimplifyRing(r, 0.1)
	if len(s) != 4 {
		t.Errorf("square simplified to %d vertices: %v", len(s), s)
	}
	if math.Abs(s.Area()-100) > 1e-9 {
		t.Errorf("area = %v", s.Area())
	}
	// Small rings pass through.
	tri := Ring{Pt(0, 0), Pt(4, 0), Pt(0, 4)}
	if got := SimplifyRing(tri, 10); len(got) != 3 {
		t.Errorf("triangle = %d", len(got))
	}
}

func TestSimplifyRingNoisyCircle(t *testing.T) {
	// A noisy circle: simplification preserves area within a few
	// percent and stays simple.
	rng := rand.New(rand.NewSource(5))
	var r Ring
	const n = 360
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / n
		rad := 100 + rng.Float64()*0.5
		r = append(r, Pt(rad*math.Cos(a), rad*math.Sin(a)))
	}
	s := SimplifyRing(r, 1)
	if len(s) >= len(r) {
		t.Fatal("no simplification")
	}
	if !s.IsSimple() {
		t.Fatal("simplified ring self-intersects")
	}
	if math.Abs(s.Area()-r.Area())/r.Area() > 0.03 {
		t.Errorf("area %v vs %v", s.Area(), r.Area())
	}
}

func TestSimplifyPolygon(t *testing.T) {
	pg := Polygon{
		Shell: Ring{
			Pt(0, 0), Pt(5, 0.01), Pt(10, 0), Pt(10, 10), Pt(5, 9.99), Pt(0, 10),
		},
		Holes: []Ring{
			{Pt(4, 4), Pt(5, 4.001), Pt(6, 4), Pt(6, 6), Pt(4, 6)},
		},
	}
	s := SimplifyPolygon(pg, 0.1)
	if len(s.Shell) != 4 {
		t.Errorf("shell = %d vertices", len(s.Shell))
	}
	if len(s.Holes) != 1 || len(s.Holes[0]) != 4 {
		t.Errorf("hole = %+v", s.Holes)
	}
}
