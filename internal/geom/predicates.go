package geom

import "math/big"

// Orientation classifies the turn formed by the ordered triple
// (a, b, c).
type Orientation int

// Possible turn directions.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
)

func (o Orientation) String() string {
	switch o {
	case Clockwise:
		return "clockwise"
	case CounterClockwise:
		return "counterclockwise"
	default:
		return "collinear"
	}
}

// orientEps is the relative error bound for the floating-point
// orientation determinant. The 3x3 orientation determinant computed
// with float64 has a forward error below 4·u·(|terms|) with unit
// roundoff u = 2^-53; we use a slightly conservative constant.
const orientEps = 8.8872057372592758e-16 // (3 + 16*u) * u

// Orient returns the orientation of the triple (a, b, c): whether c
// lies to the left of (counterclockwise), to the right of (clockwise),
// or on the directed line a→b. It uses a floating-point filter and
// falls back to exact rational arithmetic when the filter cannot
// certify the sign.
func Orient(a, b, c Point) Orientation {
	detLeft := (a.X - c.X) * (b.Y - c.Y)
	detRight := (a.Y - c.Y) * (b.X - c.X)
	det := detLeft - detRight

	var detSum float64
	switch {
	case detLeft > 0:
		if detRight <= 0 {
			return signToOrientation(det)
		}
		detSum = detLeft + detRight
	case detLeft < 0:
		if detRight >= 0 {
			return signToOrientation(det)
		}
		detSum = -detLeft - detRight
	default:
		return signToOrientation(-detRight)
	}

	errBound := orientEps * detSum
	if det >= errBound || -det >= errBound {
		return signToOrientation(det)
	}
	return orientExact(a, b, c)
}

func signToOrientation(v float64) Orientation {
	switch {
	case v > 0:
		return CounterClockwise
	case v < 0:
		return Clockwise
	default:
		return Collinear
	}
}

// orientExact computes the orientation determinant with exact rational
// arithmetic. float64 values are dyadic rationals, so the computation
// is error-free.
func orientExact(a, b, c Point) Orientation {
	ax := new(big.Rat).SetFloat64(a.X)
	ay := new(big.Rat).SetFloat64(a.Y)
	bx := new(big.Rat).SetFloat64(b.X)
	by := new(big.Rat).SetFloat64(b.Y)
	cx := new(big.Rat).SetFloat64(c.X)
	cy := new(big.Rat).SetFloat64(c.Y)

	// (ax-cx)*(by-cy) - (ay-cy)*(bx-cx)
	l := new(big.Rat).Sub(ax, cx)
	l.Mul(l, new(big.Rat).Sub(by, cy))
	r := new(big.Rat).Sub(ay, cy)
	r.Mul(r, new(big.Rat).Sub(bx, cx))
	l.Sub(l, r)
	return Orientation(l.Sign())
}

// InCircle reports whether point d lies strictly inside the circle
// through a, b, c (which must be in counterclockwise order). It uses
// exact arithmetic directly; this predicate is used rarely (Delaunay
// refinement helpers) so the filter is unnecessary.
func InCircle(a, b, c, d Point) bool {
	adx := new(big.Rat).SetFloat64(a.X - d.X)
	ady := new(big.Rat).SetFloat64(a.Y - d.Y)
	bdx := new(big.Rat).SetFloat64(b.X - d.X)
	bdy := new(big.Rat).SetFloat64(b.Y - d.Y)
	cdx := new(big.Rat).SetFloat64(c.X - d.X)
	cdy := new(big.Rat).SetFloat64(c.Y - d.Y)

	ad2 := new(big.Rat).Mul(adx, adx)
	ad2.Add(ad2, new(big.Rat).Mul(ady, ady))
	bd2 := new(big.Rat).Mul(bdx, bdx)
	bd2.Add(bd2, new(big.Rat).Mul(bdy, bdy))
	cd2 := new(big.Rat).Mul(cdx, cdx)
	cd2.Add(cd2, new(big.Rat).Mul(cdy, cdy))

	// | adx ady ad2 |
	// | bdx bdy bd2 |
	// | cdx cdy cd2 |
	det := new(big.Rat)
	term := new(big.Rat).Mul(bdy, cd2)
	term.Sub(term, new(big.Rat).Mul(cdy, bd2))
	term.Mul(term, adx)
	det.Add(det, term)

	term = new(big.Rat).Mul(bdx, cd2)
	term.Sub(term, new(big.Rat).Mul(cdx, bd2))
	term.Mul(term, ady)
	det.Sub(det, term)

	term = new(big.Rat).Mul(bdx, cdy)
	term.Sub(term, new(big.Rat).Mul(cdx, bdy))
	term.Mul(term, ad2)
	det.Add(det, term)

	return det.Sign() > 0
}

// OnSegment reports whether point p lies on the closed segment ab
// (including its endpoints).
func OnSegment(a, b, p Point) bool {
	if Orient(a, b, p) != Collinear {
		return false
	}
	return minf(a.X, b.X) <= p.X && p.X <= maxf(a.X, b.X) &&
		minf(a.Y, b.Y) <= p.Y && p.Y <= maxf(a.Y, b.Y)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
