package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestClipRingConvexBasic(t *testing.T) {
	subject := square(0, 0, 10)
	clip := square(5, 5, 10)
	out := ClipRingConvex(subject, clip)
	if math.Abs(out.Area()-25) > 1e-9 {
		t.Errorf("clip area = %v, want 25", out.Area())
	}
}

func TestClipRingConvexDisjoint(t *testing.T) {
	out := ClipRingConvex(square(0, 0, 1), square(5, 5, 1))
	if out.Area() != 0 {
		t.Errorf("disjoint clip area = %v", out.Area())
	}
}

func TestClipRingConvexContained(t *testing.T) {
	// Subject inside clip: unchanged area.
	out := ClipRingConvex(square(2, 2, 2), square(0, 0, 10))
	if math.Abs(out.Area()-4) > 1e-12 {
		t.Errorf("contained clip area = %v", out.Area())
	}
	// Clip inside subject: result is the clip.
	out = ClipRingConvex(square(0, 0, 10), square(2, 2, 2))
	if math.Abs(out.Area()-4) > 1e-12 {
		t.Errorf("containing clip area = %v", out.Area())
	}
}

func TestClipRingConvexConcaveSubject(t *testing.T) {
	u := Ring{Pt(0, 0), Pt(6, 0), Pt(6, 6), Pt(4, 6), Pt(4, 2), Pt(2, 2), Pt(2, 6), Pt(0, 6)}
	// Clip with a rectangle covering the upper half (y ≥ 3): the notch
	// splits the region into two arms of area 2*3 each.
	clip := Ring{Pt(-1, 3), Pt(7, 3), Pt(7, 7), Pt(-1, 7)}
	out := ClipRingConvex(u, clip)
	if math.Abs(out.Area()-12) > 1e-9 {
		t.Errorf("concave clip area = %v, want 12", out.Area())
	}
}

func TestIntersectionAreaBasic(t *testing.T) {
	a := Polygon{Shell: square(0, 0, 10)}
	b := Polygon{Shell: square(5, 5, 10)}
	if got := IntersectionArea(a, b); math.Abs(got-25) > 1e-9 {
		t.Errorf("IntersectionArea = %v, want 25", got)
	}
	if got := IntersectionArea(b, a); math.Abs(got-25) > 1e-9 {
		t.Errorf("IntersectionArea symmetric = %v, want 25", got)
	}
}

func TestIntersectionAreaDisjointAndNested(t *testing.T) {
	a := Polygon{Shell: square(0, 0, 10)}
	if got := IntersectionArea(a, Polygon{Shell: square(20, 20, 5)}); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
	if got := IntersectionArea(a, Polygon{Shell: square(2, 2, 3)}); math.Abs(got-9) > 1e-9 {
		t.Errorf("nested = %v, want 9", got)
	}
	if got := IntersectionArea(a, a); math.Abs(got-100) > 1e-9 {
		t.Errorf("self = %v, want 100", got)
	}
}

func TestIntersectionAreaWithHoles(t *testing.T) {
	// a: 10x10 with a 2x2 hole at (4,4); b: right half plane rectangle.
	a := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(4, 4, 2)}}
	b := Polygon{Shell: square(5, 0, 10)}
	// Intersection: x in [5,10] → 50 minus hole part x in [5,6], y in [4,6] → 2.
	if got := IntersectionArea(a, b); math.Abs(got-48) > 1e-9 {
		t.Errorf("hole case = %v, want 48", got)
	}
	// Symmetric argument order.
	if got := IntersectionArea(b, a); math.Abs(got-48) > 1e-9 {
		t.Errorf("hole case sym = %v, want 48", got)
	}
	// Both with holes.
	c := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(1, 1, 2)}}
	got := IntersectionArea(a, c)
	// area = 100 - hole(a)=4 - hole(c)=4 (holes disjoint) = 92.
	if math.Abs(got-92) > 1e-9 {
		t.Errorf("both holes = %v, want 92", got)
	}
}

func TestIntersectionAreaConcave(t *testing.T) {
	u := Polygon{Shell: Ring{Pt(0, 0), Pt(6, 0), Pt(6, 6), Pt(4, 6), Pt(4, 2), Pt(2, 2), Pt(2, 6), Pt(0, 6)}}
	band := Polygon{Shell: Ring{Pt(-1, 3), Pt(7, 3), Pt(7, 7), Pt(-1, 7)}}
	if got := IntersectionArea(u, band); math.Abs(got-12) > 1e-9 {
		t.Errorf("concave = %v, want 12", got)
	}
}

// TestIntersectionAreaRandom cross-checks triangulated clipping against
// Monte Carlo estimation on random convex polygons.
func TestIntersectionAreaRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 10; iter++ {
		a := Polygon{Shell: randomConvex(rng, 0, 0, 60)}
		b := Polygon{Shell: randomConvex(rng, 30, 30, 60)}
		got := IntersectionArea(a, b)

		// Monte Carlo estimate.
		box := a.BBox().Intersection(b.BBox())
		if box.IsEmpty() {
			if got > 1e-9 {
				t.Errorf("iter %d: empty bbox but area %v", iter, got)
			}
			continue
		}
		const n = 20000
		hits := 0
		for i := 0; i < n; i++ {
			p := Pt(box.MinX+rng.Float64()*box.Width(), box.MinY+rng.Float64()*box.Height())
			if a.ContainsPoint(p) && b.ContainsPoint(p) {
				hits++
			}
		}
		est := float64(hits) / n * box.Area()
		tol := 0.05*box.Area() + 1e-9
		if math.Abs(got-est) > tol {
			t.Errorf("iter %d: clip area %v vs Monte Carlo %v (tol %v)", iter, got, est, tol)
		}
	}
}

func randomConvex(rng *rand.Rand, ox, oy, size float64) Ring {
	pts := make([]Point, 24)
	for i := range pts {
		pts[i] = Pt(ox+rng.Float64()*size, oy+rng.Float64()*size)
	}
	return ConvexHull(pts)
}

func TestIntersectionCells(t *testing.T) {
	a := Polygon{Shell: square(0, 0, 10)}
	b := Polygon{Shell: square(5, 5, 10)}
	cells := IntersectionCells(a, b)
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	var sum float64
	for _, c := range cells {
		sum += c.Area()
		// Cell centroids must lie in both polygons.
		ct := c.Centroid()
		if !a.ContainsPoint(ct) || !b.ContainsPoint(ct) {
			t.Errorf("cell centroid %v outside intersection", ct)
		}
	}
	if math.Abs(sum-25) > 1e-9 {
		t.Errorf("cell area sum = %v, want 25", sum)
	}
}

func TestIntersectionCellsWithHole(t *testing.T) {
	a := Polygon{Shell: square(0, 0, 10)}
	b := Polygon{Shell: square(0, 0, 10), Holes: []Ring{square(4, 4, 2)}}
	cells := IntersectionCells(a, b)
	var sum float64
	for _, c := range cells {
		sum += c.Area()
	}
	if math.Abs(sum-96) > 0.5 {
		t.Errorf("cell area sum = %v, want ≈96", sum)
	}
}

func TestClipPolylineToPolygon(t *testing.T) {
	pg := Polygon{Shell: square(0, 0, 10)}
	pl := Polyline{Pt(-5, 5), Pt(5, 5), Pt(5, 15)}
	pieces := ClipPolylineToPolygon(pl, pg)
	if len(pieces) != 1 {
		t.Fatalf("pieces = %d, want 1 (connected path inside)", len(pieces))
	}
	if math.Abs(pieces[0].Length()-10) > 1e-9 {
		t.Errorf("clipped length = %v, want 10", pieces[0].Length())
	}
	// A chain that leaves and re-enters yields two pieces.
	pl2 := Polyline{Pt(2, 5), Pt(15, 5), Pt(15, 2), Pt(2, 2)}
	pieces2 := ClipPolylineToPolygon(pl2, pg)
	if len(pieces2) != 2 {
		t.Fatalf("pieces2 = %d, want 2", len(pieces2))
	}
	total := pieces2[0].Length() + pieces2[1].Length()
	if math.Abs(total-16) > 1e-9 {
		t.Errorf("total clipped length = %v, want 16", total)
	}
}
