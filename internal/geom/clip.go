package geom

import "mogis/internal/obs"

// ClipRingConvex clips subject against the convex ring clip using
// Sutherland–Hodgman. The clip ring must be convex and
// counterclockwise; the subject may be any (weakly) simple ring of
// either winding. The result is a ring whose shoelace area equals the
// intersection area; for non-convex subjects it may contain
// zero-width bridges, which do not affect area or containment tests
// by midpoint classification.
func ClipRingConvex(subject, clip Ring) Ring {
	obs.Std.GeomClip.Inc()
	out := subject.Clone()
	if !out.IsCCW() {
		out = out.Reverse()
	}
	n := len(clip)
	for i := 0; i < n && len(out) > 0; i++ {
		a, b := clip[i], clip[(i+1)%n]
		out = clipAgainstEdge(out, a, b)
	}
	return out
}

// clipAgainstEdge keeps the parts of ring on the left side (inclusive)
// of the directed line a→b.
func clipAgainstEdge(ring Ring, a, b Point) Ring {
	var out Ring
	n := len(ring)
	if n == 0 {
		return out
	}
	inside := func(p Point) bool { return Orient(a, b, p) != Clockwise }
	cross := func(p, q Point) Point {
		// Intersection of segment pq with the infinite line ab.
		d1 := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
		d2 := (b.X-a.X)*(q.Y-a.Y) - (b.Y-a.Y)*(q.X-a.X)
		t := d1 / (d1 - d2)
		return p.Lerp(q, t)
	}
	prev := ring[n-1]
	prevIn := inside(prev)
	for _, cur := range ring {
		curIn := inside(cur)
		switch {
		case prevIn && curIn:
			out = append(out, cur)
		case prevIn && !curIn:
			out = append(out, cross(prev, cur))
		case !prevIn && curIn:
			out = append(out, cross(prev, cur), cur)
		}
		prev, prevIn = cur, curIn
	}
	return out
}

// IntersectionArea returns the area of the intersection of two
// polygons (holes respected). It triangulates one polygon and clips
// the other's rings against each (convex) triangle, summing signed
// areas: shell contributions add, hole contributions subtract on both
// sides via inclusion–exclusion over ring pairs.
func IntersectionArea(p, q Polygon) float64 {
	if !p.BBox().Intersects(q.BBox()) {
		return 0
	}
	p = p.Normalize()
	q = q.Normalize()
	total := ringIntersectionArea(p.Shell, q.Shell)
	for _, hq := range q.Holes {
		total -= ringIntersectionArea(p.Shell, hq)
	}
	for _, hp := range p.Holes {
		total -= ringIntersectionArea(hp, q.Shell)
		for _, hq := range q.Holes {
			total += ringIntersectionArea(hp, hq)
		}
	}
	if total < 0 {
		total = 0
	}
	return total
}

// ringIntersectionArea returns the area of intersection of the regions
// enclosed by two simple rings.
func ringIntersectionArea(a, b Ring) float64 {
	tris, err := TriangulateRing(a)
	if err != nil {
		return 0
	}
	var sum float64
	bb := b.BBox()
	for _, t := range tris {
		if !t.AsRing().BBox().Intersects(bb) {
			continue
		}
		tri := t.AsRing()
		if !tri.IsCCW() {
			tri = tri.Reverse()
		}
		clipped := ClipRingConvex(b, tri)
		sum += clipped.Area()
	}
	return sum
}

// IntersectionCells returns, for the intersection of two polygons, a
// set of convex cells whose areas sum to the intersection area and
// whose centroids are representative interior points. Both polygons
// are triangulated (holes respected via bridging) and triangle pairs
// are clipped convex-against-convex, so every cell is exact. Overlay
// precomputation (Section 5 of the paper) stores these cells.
func IntersectionCells(p, q Polygon) []Ring {
	if !p.BBox().Intersects(q.BBox()) {
		return nil
	}
	pt, err := Triangulate(p)
	if err != nil {
		return nil
	}
	qt, err := Triangulate(q)
	if err != nil {
		return nil
	}
	var cells []Ring
	for _, tp := range pt {
		rp := ccwTriangle(tp)
		bp := rp.BBox()
		for _, tq := range qt {
			rq := ccwTriangle(tq)
			if !bp.Intersects(rq.BBox()) {
				continue
			}
			clipped := ClipRingConvex(rq, rp)
			if clipped.Area() > 0 {
				cells = append(cells, clipped)
			}
		}
	}
	return cells
}

func ccwTriangle(t Triangle) Ring {
	r := t.AsRing()
	if !r.IsCCW() {
		r = r.Reverse()
	}
	return r
}

// ClipPolylineToPolygon returns the pieces of the chain inside the
// closed polygon as a set of sub-chains.
func ClipPolylineToPolygon(pl Polyline, pg Polygon) []Polyline {
	var out []Polyline
	var cur Polyline
	flush := func() {
		if len(cur) >= 2 {
			out = append(out, cur)
		}
		cur = nil
	}
	for i := 0; i < pl.NumSegments(); i++ {
		s := pl.Segment(i)
		ivs := pg.SegmentInsideIntervals(s)
		for _, iv := range ivs {
			a, b := s.At(iv.Lo), s.At(iv.Hi)
			if len(cur) > 0 && cur[len(cur)-1].NearEq(a, 1e-9) {
				cur = append(cur, b)
			} else {
				flush()
				cur = Polyline{a, b}
			}
		}
		if len(ivs) == 0 || ivs[len(ivs)-1].Hi < 1-1e-12 {
			flush()
		}
	}
	flush()
	return out
}
