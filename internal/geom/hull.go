package geom

import "sort"

// ConvexHull returns the convex hull of the points as a
// counterclockwise ring without repeated first vertex (Andrew's
// monotone chain). Collinear points on the hull boundary are dropped.
// Degenerate inputs (all points equal or collinear) return rings with
// fewer than three vertices.
func ConvexHull(pts []Point) Ring {
	if len(pts) == 0 {
		return nil
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Remove duplicates.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	n := len(ps)
	if n < 3 {
		return Ring(ps)
	}

	hull := make([]Point, 0, 2*n)
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && Orient(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && Orient(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return Ring(hull[:len(hull)-1])
}
