package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if s.Length() != 5 {
		t.Errorf("Length = %v", s.Length())
	}
	if !s.At(0.5).Eq(Pt(1.5, 2)) {
		t.Errorf("At(0.5) = %v", s.At(0.5))
	}
	if !s.Midpoint().Eq(Pt(1.5, 2)) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if s.IsDegenerate() {
		t.Error("not degenerate")
	}
	if !Seg(Pt(1, 1), Pt(1, 1)).IsDegenerate() {
		t.Error("degenerate")
	}
	if r := s.Reverse(); !r.A.Eq(s.B) || !r.B.Eq(s.A) {
		t.Error("Reverse mismatch")
	}
	want := BBox{0, 0, 3, 4}
	if s.BBox() != want {
		t.Errorf("BBox = %v", s.BBox())
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		p    Point
		want Point
		dist float64
	}{
		{Pt(5, 3), Pt(5, 0), 3},
		{Pt(-2, 0), Pt(0, 0), 2},
		{Pt(14, 3), Pt(10, 0), 5},
		{Pt(7, 0), Pt(7, 0), 0},
	}
	for _, tt := range tests {
		if got := s.ClosestPoint(tt.p); !got.NearEq(tt.want, 1e-12) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
		if got := s.DistToPoint(tt.p); math.Abs(got-tt.dist) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.dist)
		}
	}
	// Degenerate segment distance is point distance.
	d := Seg(Pt(1, 1), Pt(1, 1)).DistToPoint(Pt(4, 5))
	if d != 5 {
		t.Errorf("degenerate DistToPoint = %v", d)
	}
}

func TestSegmentIntersectProper(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	o := Seg(Pt(0, 10), Pt(10, 0))
	iv := s.Intersect(o)
	if iv.Kind != PointIntersection {
		t.Fatalf("Kind = %v", iv.Kind)
	}
	if !iv.P.NearEq(Pt(5, 5), 1e-12) {
		t.Errorf("P = %v", iv.P)
	}
}

func TestSegmentIntersectTouch(t *testing.T) {
	// Endpoint of one on the interior of the other.
	s := Seg(Pt(0, 0), Pt(10, 0))
	o := Seg(Pt(5, 0), Pt(5, 7))
	iv := s.Intersect(o)
	if iv.Kind != PointIntersection || !iv.P.Eq(Pt(5, 0)) {
		t.Errorf("touch: %+v", iv)
	}
	// Shared endpoint.
	o2 := Seg(Pt(10, 0), Pt(12, 5))
	iv2 := s.Intersect(o2)
	if iv2.Kind != PointIntersection || !iv2.P.Eq(Pt(10, 0)) {
		t.Errorf("shared endpoint: %+v", iv2)
	}
}

func TestSegmentIntersectCollinear(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		name string
		o    Segment
		want IntersectKind
	}{
		{"overlap middle", Seg(Pt(3, 0), Pt(7, 0)), OverlapIntersection},
		{"overlap partial", Seg(Pt(7, 0), Pt(15, 0)), OverlapIntersection},
		{"touch at endpoint", Seg(Pt(10, 0), Pt(20, 0)), PointIntersection},
		{"disjoint collinear", Seg(Pt(11, 0), Pt(20, 0)), NoIntersection},
		{"identical", Seg(Pt(0, 0), Pt(10, 0)), OverlapIntersection},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			iv := s.Intersect(tt.o)
			if iv.Kind != tt.want {
				t.Errorf("Kind = %v, want %v", iv.Kind, tt.want)
			}
		})
	}
	// Vertical collinear overlap exercises the Y-projection path.
	v := Seg(Pt(0, 0), Pt(0, 10))
	iv := v.Intersect(Seg(Pt(0, 5), Pt(0, 20)))
	if iv.Kind != OverlapIntersection {
		t.Errorf("vertical overlap Kind = %v", iv.Kind)
	}
	if !iv.Overlap.A.Eq(Pt(0, 5)) || !iv.Overlap.B.Eq(Pt(0, 10)) {
		t.Errorf("vertical overlap = %+v", iv.Overlap)
	}
}

func TestSegmentIntersectDisjoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(1, 1))
	o := Seg(Pt(5, 5), Pt(6, 7))
	if s.Intersects(o) {
		t.Error("disjoint segments reported intersecting")
	}
	// Parallel non-collinear.
	o2 := Seg(Pt(0, 1), Pt(1, 2))
	if s.Intersects(o2) {
		t.Error("parallel segments reported intersecting")
	}
}

func TestSegSegDist(t *testing.T) {
	if d := SegSegDist(Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 3), Pt(10, 3))); d != 3 {
		t.Errorf("parallel dist = %v", d)
	}
	if d := SegSegDist(Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0))); d != 0 {
		t.Errorf("crossing dist = %v", d)
	}
	if d := SegSegDist(Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(4, 4), Pt(5, 4))); math.Abs(d-5) > 1e-12 {
		t.Errorf("corner dist = %v", d)
	}
}

// Property: segment intersection is symmetric in its arguments.
func TestSegmentIntersectSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		s := Seg(sanePt(ax, ay), sanePt(bx, by))
		o := Seg(sanePt(cx, cy), sanePt(dx, dy))
		return s.Intersects(o) == o.Intersects(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the reported crossing point lies on (or extremely near)
// both segments.
func TestSegmentIntersectPointOnBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		s := Seg(sanePt(ax, ay), sanePt(bx, by))
		o := Seg(sanePt(cx, cy), sanePt(dx, dy))
		iv := s.Intersect(o)
		if iv.Kind != PointIntersection {
			return true
		}
		scale := 1 + s.Length() + o.Length()
		return s.DistToPoint(iv.P) < 1e-6*scale && o.DistToPoint(iv.P) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
