package geom

import (
	"errors"
	"math"
)

// Polyline is an open chain of straight segments through consecutive
// vertices. The paper models rivers, highways and streets as
// polylines (Section 1.1).
type Polyline []Point

// ErrTooFewPoints is returned when a polyline or ring has fewer
// vertices than its definition requires.
var ErrTooFewPoints = errors.New("geom: too few points")

// Validate checks the polyline has at least two vertices.
func (pl Polyline) Validate() error {
	if len(pl) < 2 {
		return ErrTooFewPoints
	}
	return nil
}

// NumSegments returns the number of segments in the chain.
func (pl Polyline) NumSegments() int {
	if len(pl) < 2 {
		return 0
	}
	return len(pl) - 1
}

// Segment returns the i-th segment (0-based).
func (pl Polyline) Segment(i int) Segment { return Segment{A: pl[i], B: pl[i+1]} }

// Length returns the total chain length.
func (pl Polyline) Length() float64 {
	var sum float64
	for i := 0; i < pl.NumSegments(); i++ {
		sum += pl.Segment(i).Length()
	}
	return sum
}

// BBox returns the bounding box of the chain.
func (pl Polyline) BBox() BBox { return NewBBox(pl...) }

// At returns the point at arc-length parameter s ∈ [0, Length()].
// Values outside the range clamp to the endpoints.
func (pl Polyline) At(s float64) Point {
	if len(pl) == 0 {
		return Point{}
	}
	if s <= 0 {
		return pl[0]
	}
	for i := 0; i < pl.NumSegments(); i++ {
		seg := pl.Segment(i)
		l := seg.Length()
		if s <= l && l > 0 {
			return seg.At(s / l)
		}
		s -= l
	}
	return pl[len(pl)-1]
}

// DistToPoint returns the minimum distance from p to the chain.
func (pl Polyline) DistToPoint(p Point) float64 {
	if len(pl) == 1 {
		return pl[0].Dist(p)
	}
	d := math.Inf(1)
	for i := 0; i < pl.NumSegments(); i++ {
		if v := pl.Segment(i).DistToPoint(p); v < d {
			d = v
		}
	}
	return d
}

// ContainsPoint reports whether p lies on the chain.
func (pl Polyline) ContainsPoint(p Point) bool {
	if len(pl) == 1 {
		return pl[0].Eq(p)
	}
	for i := 0; i < pl.NumSegments(); i++ {
		if pl.Segment(i).ContainsPoint(p) {
			return true
		}
	}
	return false
}

// IntersectsSegment reports whether any chain segment meets s.
func (pl Polyline) IntersectsSegment(s Segment) bool {
	for i := 0; i < pl.NumSegments(); i++ {
		if pl.Segment(i).Intersects(s) {
			return true
		}
	}
	return false
}

// IntersectsPolyline reports whether the two chains share any point.
func (pl Polyline) IntersectsPolyline(o Polyline) bool {
	if !pl.BBox().Intersects(o.BBox()) {
		return false
	}
	for i := 0; i < pl.NumSegments(); i++ {
		s := pl.Segment(i)
		sb := s.BBox()
		for j := 0; j < o.NumSegments(); j++ {
			if sb.Intersects(o.Segment(j).BBox()) && s.Intersects(o.Segment(j)) {
				return true
			}
		}
	}
	return false
}

// Reverse returns the chain traversed backwards.
func (pl Polyline) Reverse() Polyline {
	out := make(Polyline, len(pl))
	for i, p := range pl {
		out[len(pl)-1-i] = p
	}
	return out
}

// Clone returns a deep copy of the chain.
func (pl Polyline) Clone() Polyline {
	out := make(Polyline, len(pl))
	copy(out, pl)
	return out
}

// IsClosed reports whether the first and last vertices coincide.
func (pl Polyline) IsClosed() bool {
	return len(pl) >= 2 && pl[0].Eq(pl[len(pl)-1])
}

// LengthInside returns the total arc length of the chain that lies
// inside polygon pg (boundary counts as inside).
func (pl Polyline) LengthInside(pg Polygon) float64 {
	var sum float64
	for i := 0; i < pl.NumSegments(); i++ {
		for _, iv := range pg.SegmentInsideIntervals(pl.Segment(i)) {
			sum += (iv.Hi - iv.Lo) * pl.Segment(i).Length()
		}
	}
	return sum
}
