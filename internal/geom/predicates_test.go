package geom

import (
	"testing"
	"testing/quick"
)

func TestOrientBasic(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c Point
		want    Orientation
	}{
		{"left turn", Pt(0, 0), Pt(1, 0), Pt(1, 1), CounterClockwise},
		{"right turn", Pt(0, 0), Pt(1, 0), Pt(1, -1), Clockwise},
		{"collinear ahead", Pt(0, 0), Pt(1, 0), Pt(2, 0), Collinear},
		{"collinear behind", Pt(0, 0), Pt(1, 0), Pt(-5, 0), Collinear},
		{"coincident", Pt(1, 1), Pt(1, 1), Pt(1, 1), Collinear},
		{"vertical left", Pt(0, 0), Pt(0, 1), Pt(-1, 0.5), CounterClockwise},
		{"vertical right", Pt(0, 0), Pt(0, 1), Pt(1, 0.5), Clockwise},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Orient(tt.a, tt.b, tt.c); got != tt.want {
				t.Errorf("Orient(%v,%v,%v) = %v, want %v", tt.a, tt.b, tt.c, got, tt.want)
			}
		})
	}
}

// TestOrientDegenerate exercises the exact fallback with nearly (and
// exactly) collinear points at coordinates that defeat naive
// floating-point evaluation.
func TestOrientDegenerate(t *testing.T) {
	// Exactly collinear points with large coordinates: the naive
	// determinant is dominated by rounding.
	a := Pt(1e16, 1e16)
	b := Pt(2e16, 2e16)
	c := Pt(3e16, 3e16)
	if got := Orient(a, b, c); got != Collinear {
		t.Errorf("large collinear: got %v", got)
	}
	// A point one ulp off the line must be classified consistently with
	// the exact computation.
	d := Pt(3e16, 3.0000000000000004e16)
	got1 := Orient(a, b, d)
	got2 := orientExact(a, b, d)
	if got1 != got2 {
		t.Errorf("filter disagrees with exact: %v vs %v", got1, got2)
	}
	if got1 == Collinear {
		t.Errorf("perturbed point classified collinear")
	}
}

// Property: Orient is antisymmetric under swapping a and b, and
// invariant under cyclic rotation.
func TestOrientProperties(t *testing.T) {
	cyc := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := sanePt(ax, ay), sanePt(bx, by), sanePt(cx, cy)
		return Orient(a, b, c) == Orient(b, c, a) && Orient(b, c, a) == Orient(c, a, b)
	}
	if err := quick.Check(cyc, nil); err != nil {
		t.Error(err)
	}
	anti := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := sanePt(ax, ay), sanePt(bx, by), sanePt(cx, cy)
		return Orient(a, b, c) == -Orient(b, a, c)
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
}

func TestOnSegment(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 10)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},
		{Pt(10, 10), true},
		{Pt(11, 11), false}, // collinear but beyond
		{Pt(-1, -1), false},
		{Pt(5, 5.0001), false},
	}
	for _, tt := range tests {
		if got := OnSegment(a, b, tt.p); got != tt.want {
			t.Errorf("OnSegment(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestInCircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) (counterclockwise).
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	if !InCircle(a, b, c, Pt(0, 0)) {
		t.Error("center should be inside")
	}
	if InCircle(a, b, c, Pt(2, 2)) {
		t.Error("far point should be outside")
	}
	if InCircle(a, b, c, Pt(0, -1)) {
		t.Error("cocircular point should not be strictly inside")
	}
}

func TestOrientationString(t *testing.T) {
	if Clockwise.String() != "clockwise" || CounterClockwise.String() != "counterclockwise" ||
		Collinear.String() != "collinear" {
		t.Error("Orientation.String mismatch")
	}
}
