package geom

import (
	"fmt"
	"math"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns the vector sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 { return p.Sub(q).Norm2() }

// Lerp linearly interpolates between p (t=0) and q (t=1).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q are the same point (exact comparison;
// coordinates are rationals per the paper's model, so equality is
// meaningful).
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// NearEq reports whether p and q coincide within absolute tolerance eps.
func (p Point) NearEq(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// String formats the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// MidPoint returns the midpoint of p and q.
func MidPoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }
