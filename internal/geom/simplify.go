package geom

// SimplifyPolyline reduces the chain with the Ramer–Douglas–Peucker
// algorithm: the result is a subsequence containing both endpoints,
// and every dropped vertex lies within epsilon of the simplified
// chain's corresponding segment.
func SimplifyPolyline(pl Polyline, epsilon float64) Polyline {
	if len(pl) <= 2 {
		return pl.Clone()
	}
	keep := make([]bool, len(pl))
	keep[0], keep[len(pl)-1] = true, true
	rdp(pl, 0, len(pl)-1, epsilon, keep)
	out := make(Polyline, 0, len(pl))
	for i, k := range keep {
		if k {
			out = append(out, pl[i])
		}
	}
	return out
}

func rdp(pl Polyline, first, last int, epsilon float64, keep []bool) {
	if last-first < 2 {
		return
	}
	seg := Segment{A: pl[first], B: pl[last]}
	worst, worstD := -1, epsilon
	for i := first + 1; i < last; i++ {
		if d := seg.DistToPoint(pl[i]); d > worstD {
			worst, worstD = i, d
		}
	}
	if worst < 0 {
		return
	}
	keep[worst] = true
	rdp(pl, first, worst, epsilon, keep)
	rdp(pl, worst, last, epsilon, keep)
}

// SimplifyRing reduces a ring with Douglas–Peucker while keeping it a
// valid ring: the two vertices farthest apart are pinned as anchors
// and the two arcs between them are simplified independently. When
// simplification would produce a degenerate (< 3 vertices) or
// self-intersecting ring, the original is returned unchanged.
func SimplifyRing(r Ring, epsilon float64) Ring {
	n := len(r)
	if n <= 4 {
		return r.Clone()
	}
	// Anchors: vertex 0 and the vertex farthest from it.
	far, farD := 0, -1.0
	for i := 1; i < n; i++ {
		if d := r[0].Dist2(r[i]); d > farD {
			far, farD = i, d
		}
	}
	arc1 := append(Polyline{}, r[:far+1]...)
	arc2 := append(append(Polyline{}, r[far:]...), r[0])
	s1 := SimplifyPolyline(arc1, epsilon)
	s2 := SimplifyPolyline(arc2, epsilon)
	out := make(Ring, 0, len(s1)+len(s2)-2)
	out = append(out, s1...)
	out = append(out, s2[1:len(s2)-1]...)
	if len(out) < 3 || !out.IsSimple() {
		return r.Clone()
	}
	return out
}

// SimplifyPolygon simplifies the shell and every hole. Holes that
// collapse below three vertices are dropped; a shell that cannot be
// simplified safely stays unchanged (see SimplifyRing).
func SimplifyPolygon(pg Polygon, epsilon float64) Polygon {
	out := Polygon{Shell: SimplifyRing(pg.Shell, epsilon)}
	for _, h := range pg.Holes {
		sh := SimplifyRing(h, epsilon)
		if len(sh) >= 3 {
			out.Holes = append(out.Holes, sh)
		}
	}
	return out
}
