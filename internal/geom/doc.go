// Package geom provides the computational-geometry substrate for the
// moving-objects GIS-OLAP model: points, segments, polylines, polygons
// with holes, bounding boxes, robust predicates with an exact
// rational fallback, area and length measures, triangulation,
// clipping, and polygon overlay primitives.
//
// Coordinates are float64. Predicates (orientation, segment
// intersection, point-in-polygon) use a floating-point fast path and
// fall back to exact math/big.Rat arithmetic when the floating-point
// result is within an error bound of zero, following the spirit of
// Shewchuk's adaptive predicates. The paper assumes rational
// coordinates (Section 1.2); float64 values are exactly representable
// rationals, so the exact fallback decides every degenerate case
// correctly.
package geom
