package geom

import "errors"

// Triangle is a triangle given by its three corners.
type Triangle struct {
	A, B, C Point
}

// Area returns the absolute area of the triangle.
func (t Triangle) Area() float64 {
	return Ring{t.A, t.B, t.C}.Area()
}

// AsRing returns the triangle as a ring in its stored order.
func (t Triangle) AsRing() Ring { return Ring{t.A, t.B, t.C} }

// ContainsPoint reports whether p is inside or on the triangle.
func (t Triangle) ContainsPoint(p Point) bool {
	return t.AsRing().Locate(p) != Outside
}

// Centroid returns the triangle centroid.
func (t Triangle) Centroid() Point {
	return Point{(t.A.X + t.B.X + t.C.X) / 3, (t.A.Y + t.B.Y + t.C.Y) / 3}
}

// ErrTriangulate is returned when ear clipping cannot make progress,
// which indicates a non-simple input ring.
var ErrTriangulate = errors.New("geom: cannot triangulate (non-simple ring?)")

// TriangulateRing decomposes a simple ring into triangles by ear
// clipping. The ring may have either winding. O(n²) worst case, which
// is fine for the polygon sizes in GIS layers (tens to hundreds of
// vertices).
func TriangulateRing(r Ring) ([]Triangle, error) {
	work, err := prepRing(r)
	if err != nil {
		return nil, err
	}
	if !work.IsSimple() {
		return nil, ErrNotSimple
	}
	return earClip(work)
}

// prepRing normalizes a ring for ear clipping: counterclockwise
// winding, no consecutive duplicate vertices.
func prepRing(r Ring) (Ring, error) {
	if len(r) < 3 {
		return nil, ErrTooFewPoints
	}
	work := r.Clone()
	if !work.IsCCW() {
		work = work.Reverse()
	}
	work = dedupRing(work)
	if len(work) < 3 {
		return nil, ErrTooFewPoints
	}
	return work, nil
}

// earClip triangulates a counterclockwise, dedup'd ring. The ring may
// be weakly simple (coincident bridge edges from hole splicing).
func earClip(work Ring) ([]Triangle, error) {
	idx := make([]int, len(work))
	for i := range idx {
		idx[i] = i
	}
	var tris []Triangle
	guard := 0
	for len(idx) > 3 {
		clipped := false
		m := len(idx)
		for i := 0; i < m; i++ {
			ia, ib, ic := idx[(i+m-1)%m], idx[i], idx[(i+1)%m]
			a, b, c := work[ia], work[ib], work[ic]
			if Orient(a, b, c) != CounterClockwise {
				continue // reflex or degenerate corner
			}
			if earContainsOther(work, idx, ia, ib, ic) {
				continue
			}
			tris = append(tris, Triangle{A: a, B: b, C: c})
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if clipped {
			guard = 0
			continue
		}
		guard++
		if guard > 2 {
			return nil, ErrTriangulate
		}
		// Tolerate collinear corners: drop one; the zero-area sliver
		// does not change the cover.
		m = len(idx)
		removed := false
		for i := 0; i < m; i++ {
			ia, ib, ic := idx[(i+m-1)%m], idx[i], idx[(i+1)%m]
			if Orient(work[ia], work[ib], work[ic]) == Collinear {
				idx = append(idx[:i], idx[i+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			return nil, ErrTriangulate
		}
	}
	tris = append(tris, Triangle{A: work[idx[0]], B: work[idx[1]], C: work[idx[2]]})
	return tris, nil
}

// earContainsOther reports whether any remaining vertex, other than
// the ear corners or duplicates of them (hole bridges duplicate
// vertices), lies strictly inside the candidate ear or on its
// diagonal.
func earContainsOther(work Ring, idx []int, ia, ib, ic int) bool {
	a, b, c := work[ia], work[ib], work[ic]
	tri := Ring{a, b, c}
	for _, j := range idx {
		if j == ia || j == ib || j == ic {
			continue
		}
		p := work[j]
		if p.Eq(a) || p.Eq(b) || p.Eq(c) {
			continue
		}
		if tri.Locate(p) == Inside {
			return true
		}
		// A vertex exactly on the diagonal (a-c edge) also blocks the ear.
		if OnSegment(a, c, p) {
			return true
		}
	}
	return false
}

func dedupRing(r Ring) Ring {
	out := r[:0:0]
	for i, p := range r {
		if i > 0 && p.Eq(out[len(out)-1]) {
			continue
		}
		out = append(out, p)
	}
	if len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// Triangulate decomposes a polygon into triangles. Holes are handled
// by connecting each hole to the shell with a bridge edge (the
// standard cut method), producing a single weakly simple ring that is
// then ear-clipped.
func Triangulate(pg Polygon) ([]Triangle, error) {
	if len(pg.Holes) == 0 {
		return TriangulateRing(pg.Shell)
	}
	ring, err := bridgeHoles(pg.Normalize())
	if err != nil {
		return nil, err
	}
	work, err := prepRing(ring)
	if err != nil {
		return nil, err
	}
	return earClip(work)
}

// bridgeHoles merges holes into the shell via mutually visible vertex
// pairs found by brute force.
func bridgeHoles(pg Polygon) (Ring, error) {
	shell := pg.Shell.Clone()
	holes := make([]Ring, len(pg.Holes))
	for i, h := range pg.Holes {
		holes[i] = h.Clone() // clockwise after Normalize
	}
	for len(holes) > 0 {
		merged := false
		for hi, h := range holes {
			si, hj, ok := findBridge(shell, h, holes, hi)
			if !ok {
				continue
			}
			shell = spliceHole(shell, si, h, hj)
			holes = append(holes[:hi], holes[hi+1:]...)
			merged = true
			break
		}
		if !merged {
			return nil, ErrTriangulate
		}
	}
	return shell, nil
}

// findBridge returns indices (into shell and hole) of a mutually
// visible vertex pair: the connecting segment crosses no edge of the
// shell, the candidate hole, or any other remaining hole.
func findBridge(shell, hole Ring, holes []Ring, skip int) (int, int, bool) {
	blocked := func(s Segment) bool {
		if ringBlocks(shell, s) || ringBlocks(hole, s) {
			return true
		}
		for i, other := range holes {
			if i == skip {
				continue
			}
			if ringBlocks(other, s) {
				return true
			}
		}
		return false
	}
	for si, sp := range shell {
		for hj, hp := range hole {
			s := Segment{A: sp, B: hp}
			if !blocked(s) {
				return si, hj, true
			}
		}
	}
	return 0, 0, false
}

// ringBlocks reports whether segment s properly crosses any edge of r
// or passes through any vertex of r other than its own endpoints.
func ringBlocks(r Ring, s Segment) bool {
	for i := range r {
		e := r.Segment(i)
		iv := s.Intersect(e)
		switch iv.Kind {
		case NoIntersection:
			continue
		case OverlapIntersection:
			return true
		case PointIntersection:
			if !iv.P.Eq(s.A) && !iv.P.Eq(s.B) {
				return true
			}
		}
	}
	return false
}

// spliceHole inserts the hole ring into the shell at the bridge,
// duplicating the bridge endpoints, yielding one weakly simple ring.
func spliceHole(shell Ring, si int, hole Ring, hj int) Ring {
	out := make(Ring, 0, len(shell)+len(hole)+2)
	out = append(out, shell[:si+1]...)
	for k := 0; k <= len(hole); k++ {
		out = append(out, hole[(hj+k)%len(hole)])
	}
	out = append(out, shell[si])
	out = append(out, shell[si+1:]...)
	return out
}
