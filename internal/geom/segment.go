package geom

import (
	"math"

	"mogis/internal/obs"
)

// Segment is a closed straight line segment between two points.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// BBox returns the bounding box of the segment.
func (s Segment) BBox() BBox { return NewBBox(s.A, s.B) }

// At returns the point at parameter t ∈ [0,1] along the segment.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return MidPoint(s.A, s.B) }

// IsDegenerate reports whether both endpoints coincide.
func (s Segment) IsDegenerate() bool { return s.A.Eq(s.B) }

// Reverse returns the segment with endpoints swapped.
func (s Segment) Reverse() Segment { return Segment{A: s.B, B: s.A} }

// ContainsPoint reports whether p lies on the closed segment.
func (s Segment) ContainsPoint(p Point) bool { return OnSegment(s.A, s.B, p) }

// ClosestParam returns the parameter t ∈ [0,1] of the point on the
// segment closest to p.
func (s Segment) ClosestParam(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / l2
	return math.Max(0, math.Min(1, t))
}

// ClosestPoint returns the point on the closed segment closest to p.
func (s Segment) ClosestPoint(p Point) Point { return s.At(s.ClosestParam(p)) }

// DistToPoint returns the distance from p to the closed segment.
func (s Segment) DistToPoint(p Point) float64 {
	obs.Std.GeomDistance.Inc()
	return s.ClosestPoint(p).Dist(p)
}

// IntersectKind classifies how two segments meet.
type IntersectKind int

// Segment intersection classifications.
const (
	NoIntersection      IntersectKind = iota // disjoint
	PointIntersection                        // a single point (crossing or touch)
	OverlapIntersection                      // a shared collinear sub-segment
)

// SegmentIntersection describes the intersection of two segments.
type SegmentIntersection struct {
	Kind IntersectKind
	// P is the intersection point when Kind == PointIntersection.
	P Point
	// Overlap is the shared sub-segment when Kind == OverlapIntersection.
	Overlap Segment
}

// Intersect computes the intersection of segments s and o using the
// robust orientation predicate for classification and floating-point
// arithmetic for the crossing coordinates.
func (s Segment) Intersect(o Segment) SegmentIntersection {
	d1 := Orient(o.A, o.B, s.A)
	d2 := Orient(o.A, o.B, s.B)
	d3 := Orient(s.A, s.B, o.A)
	d4 := Orient(s.A, s.B, o.B)

	// Proper crossing: each segment's endpoints straddle the other's line.
	if d1 != d2 && d3 != d4 && d1 != Collinear && d2 != Collinear &&
		d3 != Collinear && d4 != Collinear {
		return SegmentIntersection{Kind: PointIntersection, P: s.crossPoint(o)}
	}

	if d1 == Collinear && d2 == Collinear && d3 == Collinear && d4 == Collinear {
		return s.collinearOverlap(o)
	}

	// Touching cases: one endpoint on the other segment.
	switch {
	case d1 == Collinear && OnSegment(o.A, o.B, s.A):
		return SegmentIntersection{Kind: PointIntersection, P: s.A}
	case d2 == Collinear && OnSegment(o.A, o.B, s.B):
		return SegmentIntersection{Kind: PointIntersection, P: s.B}
	case d3 == Collinear && OnSegment(s.A, s.B, o.A):
		return SegmentIntersection{Kind: PointIntersection, P: o.A}
	case d4 == Collinear && OnSegment(s.A, s.B, o.B):
		return SegmentIntersection{Kind: PointIntersection, P: o.B}
	}
	return SegmentIntersection{Kind: NoIntersection}
}

// crossPoint returns the crossing point of two properly intersecting
// segments.
func (s Segment) crossPoint(o Segment) Point {
	r := s.B.Sub(s.A)
	q := o.B.Sub(o.A)
	denom := r.Cross(q)
	if denom == 0 {
		// Callers guarantee a proper crossing; guard anyway.
		return s.A
	}
	t := o.A.Sub(s.A).Cross(q) / denom
	return s.At(t)
}

// collinearOverlap resolves the intersection of two collinear segments.
func (s Segment) collinearOverlap(o Segment) SegmentIntersection {
	// Project onto the dominant axis of s to order endpoints.
	useX := math.Abs(s.B.X-s.A.X) >= math.Abs(s.B.Y-s.A.Y)
	if s.IsDegenerate() {
		useX = math.Abs(o.B.X-o.A.X) >= math.Abs(o.B.Y-o.A.Y)
	}
	key := func(p Point) float64 {
		if useX {
			return p.X
		}
		return p.Y
	}
	sa, sb := s.A, s.B
	if key(sa) > key(sb) {
		sa, sb = sb, sa
	}
	oa, ob := o.A, o.B
	if key(oa) > key(ob) {
		oa, ob = ob, oa
	}
	lo, hi := sa, sb
	if key(oa) > key(lo) {
		lo = oa
	}
	if key(ob) < key(hi) {
		hi = ob
	}
	switch {
	case key(lo) > key(hi):
		return SegmentIntersection{Kind: NoIntersection}
	case lo.Eq(hi):
		return SegmentIntersection{Kind: PointIntersection, P: lo}
	default:
		return SegmentIntersection{Kind: OverlapIntersection, Overlap: Segment{A: lo, B: hi}}
	}
}

// Intersects reports whether the two closed segments share any point.
func (s Segment) Intersects(o Segment) bool {
	return s.Intersect(o).Kind != NoIntersection
}

// SegSegDist returns the minimum distance between two closed segments.
func SegSegDist(s, o Segment) float64 {
	if s.Intersects(o) {
		return 0
	}
	d := s.DistToPoint(o.A)
	if v := s.DistToPoint(o.B); v < d {
		d = v
	}
	if v := o.DistToPoint(s.A); v < d {
		d = v
	}
	if v := o.DistToPoint(s.B); v < d {
		d = v
	}
	return d
}
