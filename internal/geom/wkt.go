package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// WKT renders common geometry values in Well-Known Text, the
// interchange format GIS layers conventionally use.
func WKT(g any) string {
	switch v := g.(type) {
	case Point:
		return fmt.Sprintf("POINT (%s %s)", fmtF(v.X), fmtF(v.Y))
	case Segment:
		return fmt.Sprintf("LINESTRING (%s %s, %s %s)",
			fmtF(v.A.X), fmtF(v.A.Y), fmtF(v.B.X), fmtF(v.B.Y))
	case Polyline:
		return "LINESTRING " + wktCoords([]Point(v), false)
	case Ring:
		return "POLYGON (" + wktCoords([]Point(v), true) + ")"
	case Polygon:
		var sb strings.Builder
		sb.WriteString("POLYGON (")
		sb.WriteString(wktCoords([]Point(v.Shell), true))
		for _, h := range v.Holes {
			sb.WriteString(", ")
			sb.WriteString(wktCoords([]Point(h), true))
		}
		sb.WriteString(")")
		return sb.String()
	case BBox:
		return WKT(v.AsPolygon())
	default:
		return fmt.Sprintf("UNKNOWN (%v)", g)
	}
}

func wktCoords(pts []Point, closeRing bool) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, p := range pts {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(fmtF(p.X))
		sb.WriteByte(' ')
		sb.WriteString(fmtF(p.Y))
	}
	if closeRing && len(pts) > 0 && !pts[0].Eq(pts[len(pts)-1]) {
		sb.WriteString(", ")
		sb.WriteString(fmtF(pts[0].X))
		sb.WriteByte(' ')
		sb.WriteString(fmtF(pts[0].Y))
	}
	sb.WriteByte(')')
	return sb.String()
}

func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ParseWKTPoint parses "POINT (x y)".
func ParseWKTPoint(s string) (Point, error) {
	s = strings.TrimSpace(s)
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "POINT") {
		return Point{}, fmt.Errorf("geom: not a WKT point: %q", s)
	}
	body := strings.TrimSpace(s[len("POINT"):])
	body = strings.TrimPrefix(body, "(")
	body = strings.TrimSuffix(body, ")")
	fs := strings.Fields(body)
	if len(fs) != 2 {
		return Point{}, fmt.Errorf("geom: malformed WKT point: %q", s)
	}
	x, err := strconv.ParseFloat(fs[0], 64)
	if err != nil {
		return Point{}, fmt.Errorf("geom: bad x in %q: %w", s, err)
	}
	y, err := strconv.ParseFloat(fs[1], 64)
	if err != nil {
		return Point{}, fmt.Errorf("geom: bad y in %q: %w", s, err)
	}
	return Point{x, y}, nil
}
